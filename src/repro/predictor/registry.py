"""Pluggable predictor registry: *how* the solver's initial guess is made.

A :class:`Predictor` produces the iterative solver's starting vector
for each time step (paper §2.2) from whatever history it keeps; the
registry makes the family pluggable the same way
:mod:`repro.workloads.scenario` made workloads pluggable — a class is
registered under its ``name`` with :func:`register_predictor` and
:func:`predictor_by_name` resolves names loudly, so a typo'd predictor
fails at spec time instead of silently running the default
extrapolation.

The registered zoo spans the classical accelerator ladder:

* ``constant`` / ``linear`` — displacement-only polynomial
  extrapolation (degree 0/1), the floor any history-based method must
  beat;
* ``adams-bashforth`` — the paper's conventional 4-step velocity
  extrapolation (baseline methods' native predictor);
* ``data-driven`` — the paper's MGS-based correction estimator
  (heterogeneous methods' native predictor, Eq. 3);
* ``aitken`` — dynamic relaxation of the Adams-Bashforth guess, omega
  updated from successive guess-residual differences (CoCoNuT's
  ``coupled_solvers/aitken.py`` transplanted to time-step prediction);
* ``iqn-ils`` — quasi-Newton correction with an IQN-ILS-style
  least-squares surrogate Jacobian over a bounded secant window.

:data:`DEFAULT_PREDICTOR` (``"auto"``) is a *sentinel*, not a
registered class: it means "the method's paper-native pairing"
(Adams-Bashforth for the single-device baselines, data-driven for the
heterogeneous pipeline — the table in :mod:`repro.core.methods`).
Auto cells therefore reproduce pre-registry numerics bit-for-bit,
which is what lets the campaign's ``predictors`` axis keep pre-axis
cell hashes and cached artifacts valid.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

__all__ = [
    "DEFAULT_PREDICTOR",
    "PREDICTORS",
    "Predictor",
    "build_predictor",
    "predictor_by_name",
    "predictor_names",
    "register_predictor",
]

#: name -> registered Predictor subclass (the class, not an instance:
#: predictors are per-case state and are built per use).
PREDICTORS: dict[str, type["Predictor"]] = {}

#: Sentinel meaning "the method's paper-native predictor" (see module
#: docstring).  Cells, CLI invocations and studies that do not name a
#: predictor get this, and campaign cells running it keep their
#: pre-axis content hash.
DEFAULT_PREDICTOR = "auto"


class Predictor(abc.ABC):
    """One registered initial-guess predictor.

    The contract every registered class honors (and the property suite
    in ``tests/predictor/test_registry_properties.py`` enforces):

    * :meth:`predict` returns the guess for the *upcoming* step as a
      finite ``(n,)`` fp64 vector, deterministically from the observed
      history (``f_next`` is the known upcoming force, which
      force-aware predictors may use);
    * :meth:`observe` records one completed step's converged state;
      calls strictly alternate predict/observe in the pipeline, but a
      predictor must tolerate an observe with no preceding predict
      (resume bootstraps do this);
    * :meth:`state_dict`/:meth:`load_state_dict` round-trip **all**
      state :meth:`predict` reads through JSON-able values, exactly —
      the checkpoint/resume bit-identity contract;
    * :attr:`s_effective` is the history length the next prediction
      will consume, or ``None`` for predictors without a meaningful
      history-length notion (the ``s_used`` reporting then stays
      ``None`` instead of diluting campaign means with zeros).
    """

    #: registry key (also the campaign cell's ``predictor`` param).
    name: ClassVar[str] = ""
    #: one-line rationale, shown by ``repro predictors``.
    description: ClassVar[str] = ""

    @classmethod
    def build(
        cls,
        n: int,
        dt: float,
        *,
        s_min: int = 8,
        s_max: int = 32,
        n_regions: int = 16,
    ) -> "Predictor":
        """Uniform construction seam from one run configuration.

        The base signature covers predictors without tunables;
        history-bearing subclasses override to map the run's
        ``s_range``/``n_regions`` onto their own knobs.
        """
        return cls(n, dt)

    @abc.abstractmethod
    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        """Initial guess for the upcoming step."""

    @abc.abstractmethod
    def observe(
        self, u: np.ndarray, v: np.ndarray, f: np.ndarray | None = None
    ) -> None:
        """Record the converged state of the step just completed."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """JSON-able snapshot of everything :meth:`predict` reads."""

    @abc.abstractmethod
    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""

    def memory_bytes(self) -> int:
        """Modeled history footprint (0 for stateless predictors)."""
        return 0

    @property
    def s_effective(self) -> int | None:
        """History length the next prediction will use, or ``None``
        when the predictor has no history-length notion."""
        return None


def register_predictor(cls: type[Predictor]) -> type[Predictor]:
    """Class decorator adding a :class:`Predictor` to the registry.

    The class's ``name`` is the registry key; re-registering a name
    with a *different* class is an error (re-importing the same class
    is idempotent, so test reloads stay safe).  The ``"auto"``
    sentinel is reserved.
    """
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"predictor class {cls.__name__} has no name")
    if name == DEFAULT_PREDICTOR:
        raise ValueError(
            f"predictor name {DEFAULT_PREDICTOR!r} is the reserved "
            "method-native sentinel"
        )
    existing = PREDICTORS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"predictor name {name!r} already registered by {existing.__name__}"
        )
    PREDICTORS[name] = cls
    return cls


def predictor_by_name(name: str) -> type[Predictor]:
    """Resolve a registered predictor class by name; a typo must fail
    loudly rather than silently run the default extrapolation (the
    same discipline as :func:`repro.workloads.scenario.scenario_by_name`)."""
    try:
        return PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; choose from {sorted(PREDICTORS)}"
        ) from None


def predictor_names() -> tuple[str, ...]:
    """Registered predictor names in deterministic (sorted) order —
    the order sweeps and tables present them in.  The ``"auto"``
    sentinel is not listed: it is a per-method alias, not a class."""
    return tuple(sorted(PREDICTORS))


def build_predictor(
    name: str,
    n: int,
    dt: float,
    *,
    s_min: int = 8,
    s_max: int = 32,
    n_regions: int = 16,
) -> Predictor:
    """Build one registered predictor from a run configuration — the
    single construction seam :func:`repro.core.methods.run_method`
    uses for every case."""
    return predictor_by_name(name).build(
        int(n), float(dt), s_min=int(s_min), s_max=int(s_max),
        n_regions=int(n_regions),
    )
