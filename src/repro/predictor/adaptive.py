"""Online adjustment of the predictor history length ``s`` (paper §2.2).

The predictor cost grows ~linearly in ``s`` while the solver cost falls
(better initial guesses -> fewer iterations), so the heterogeneous
pipeline is balanced when predictor@CPU time matches solver@GPU time.
The paper "dynamically selects s from the range 8 <= s <= 32 ... such
that the execution time of the predictor@CPU is equivalent to the
execution time of the solver@GPU" (Fig. 4).

This controller is deliberately simple: a deadband around the target
ratio plus single-step moves, which is what keeps the Fig. 4 trace
stable instead of oscillating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AdaptiveSController"]


@dataclass
class AdaptiveSController:
    """Balance predictor time against solver time by moving ``s``.

    Parameters
    ----------
    s_min, s_max : admissible range (paper: 8..32 on the single-GH200
        node; s_max drops to 11 on Alps' smaller CPU memory).
    step : how far ``s`` moves per adjustment.
    deadband : relative tolerance around balance within which ``s``
        is left alone (hysteresis).
    """

    s_min: int = 8
    s_max: int = 32
    step: int = 2
    deadband: float = 0.15
    s: int = field(default=-1)
    history: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 1 <= self.s_min <= self.s_max:
            raise ValueError("need 1 <= s_min <= s_max")
        if self.s < 0:
            self.s = self.s_min

    def state_dict(self) -> dict:
        """JSON-able snapshot (current ``s`` + decision history)."""
        return {"s": self.s, "history": list(self.history)}

    def load_state_dict(self, doc: dict) -> None:
        self.s = int(doc["s"])
        self.history = [int(x) for x in doc["history"]]

    def update(self, t_predictor: float, t_solver: float) -> int:
        """Observe one step's times; return the ``s`` for the next step.

        Increasing ``s`` is useful only while the predictor has slack
        (t_pred < t_solve): a longer history improves the guess at no
        makespan cost.  When the predictor becomes critical-path,
        back off.
        """
        if t_predictor < 0 or t_solver < 0:
            raise ValueError("times must be non-negative")
        if t_solver > 0:
            ratio = t_predictor / t_solver
            if ratio < 1.0 - self.deadband and self.s < self.s_max:
                self.s = min(self.s_max, self.s + self.step)
            elif ratio > 1.0 + self.deadband and self.s > self.s_min:
                self.s = max(self.s_min, self.s - self.step)
        self.history.append(self.s)
        return self.s
