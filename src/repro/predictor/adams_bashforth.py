"""Adams-Bashforth initial-solution extrapolation (paper §3.2).

The paper's conventional predictor estimates the next displacement from
the last four velocities:

    u_bar_it = u_{it-1} + dt/24 (55 v_{it-1} - 59 v_{it-2}
                                 + 37 v_{it-3} - 9 v_{it-4})

Before four steps of history exist the order degrades gracefully
(AB1..AB3), matching how production codes warm up.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.predictor.registry import Predictor, register_predictor
from repro.sparse.traffic import vector_traffic
from repro.util import counters

__all__ = ["AdamsBashforth"]

# AB coefficients by order (applied to v_{it-1}, v_{it-2}, ...).
_AB_COEFFS = {
    1: np.array([1.0]),
    2: np.array([1.5, -0.5]),
    3: np.array([23.0, -16.0, 5.0]) / 12.0,
    4: np.array([55.0, -59.0, 37.0, -9.0]) / 24.0,
}


@register_predictor
class AdamsBashforth(Predictor):
    """Order-(<=4) Adams-Bashforth displacement extrapolator.

    Parameters
    ----------
    n : number of scalar dofs.
    dt : time step.
    order : maximum extrapolation order (paper uses 4).
    tag : kernel tag for the (tiny) extrapolation cost.
    """

    name = "adams-bashforth"
    description = (
        "4-step velocity extrapolation (paper §3.2) — the conventional "
        "predictor of the single-device baselines"
    )

    def __init__(self, n: int, dt: float, order: int = 4, tag: str = "predictor.ab") -> None:
        if order not in _AB_COEFFS:
            raise ValueError("order must be 1..4")
        self.n = int(n)
        self.dt = float(dt)
        self.order = order
        self.tag = tag
        self._u = np.zeros(n)
        self._v_hist: deque[np.ndarray] = deque(maxlen=order)

    @property
    def history_steps(self) -> int:
        return len(self._v_hist)

    def memory_bytes(self) -> int:
        """History footprint (u + stored velocities)."""
        return 8 * self.n * (1 + len(self._v_hist))

    def state_dict(self) -> dict:
        """JSON-able snapshot of the extrapolation history."""
        return {"u": self._u, "v_hist": list(self._v_hist)}

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (exact: the arrays
        round-trip through JSON repr floats bit-identically)."""
        u = np.asarray(doc["u"], dtype=float)
        if u.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u = u
        self._v_hist = deque(
            (np.asarray(v, dtype=float) for v in doc["v_hist"]),
            maxlen=self.order,
        )

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        """Extrapolated displacement for the upcoming step.

        ``f_next`` is accepted for interface compatibility with the
        data-driven predictor (Eq. 3) and ignored — AB extrapolates
        from kinematics only.
        """
        k = len(self._v_hist)
        if k == 0:
            return self._u.copy()
        coeffs = _AB_COEFFS[min(k, self.order)]
        u_bar = self._u.copy()
        for c, v in zip(coeffs, reversed(self._v_hist)):
            u_bar += (self.dt * c) * v
        w = vector_traffic(self.n, n_reads=1 + k, n_writes=1, flops_per_entry=2.0 * k)
        counters.charge(self.tag, w.flops, w.bytes)
        return u_bar

    def observe(self, u: np.ndarray, v: np.ndarray,
                f: np.ndarray | None = None) -> None:
        """Record the converged state of the step just completed
        (``f`` accepted for interface compatibility, unused)."""
        if u.shape != (self.n,) or v.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u = u.copy()
        self._v_hist.append(v.copy())
