"""Initial-guess predictors for the iterative solver (paper §2.2, Eq. 3).

The zoo is pluggable through :mod:`repro.predictor.registry` — every
class below registers itself under its ``name`` on import, and
:func:`~repro.predictor.registry.predictor_by_name` resolves names
loudly.  The paper's own pairing (Fig. 3) remains the default:

* :class:`~repro.predictor.adams_bashforth.AdamsBashforth` — the
  conventional 4-step extrapolation used by the CRS-CG baselines;
* :class:`~repro.predictor.datadriven.DataDrivenPredictor` — the
  paper's data-driven method ([6]-style): Adams-Bashforth plus a
  per-subdomain modified-Gram-Schmidt estimate of the remaining
  correction, learned from the last ``s`` time steps.

Around them, the classical accelerator ladder:

* :class:`~repro.predictor.ladder.ConstantPredictor` /
  :class:`~repro.predictor.ladder.LinearPredictor` — degree-0/1
  displacement extrapolation, the floor any accelerator must beat;
* :class:`~repro.predictor.aitken.AitkenPredictor` — dynamic Aitken
  relaxation of the Adams-Bashforth increment;
* :class:`~repro.predictor.iqn.IQNILSPredictor` — IQN-ILS-style
  quasi-Newton correction over a bounded, QR-filtered secant window.

:class:`~repro.predictor.adaptive.AdaptiveSController` adjusts ``s``
online so predictor@CPU time balances solver@GPU time (Fig. 4); it
only touches predictors that expose ``set_s``.
"""

from repro.predictor.registry import (
    DEFAULT_PREDICTOR,
    PREDICTORS,
    Predictor,
    build_predictor,
    predictor_by_name,
    predictor_names,
    register_predictor,
)
from repro.predictor.adams_bashforth import AdamsBashforth
from repro.predictor.datadriven import DataDrivenPredictor, mgs_estimate
from repro.predictor.ladder import ConstantPredictor, LinearPredictor
from repro.predictor.aitken import AitkenPredictor
from repro.predictor.iqn import IQNILSPredictor
from repro.predictor.adaptive import AdaptiveSController

__all__ = [
    "DEFAULT_PREDICTOR",
    "PREDICTORS",
    "Predictor",
    "build_predictor",
    "predictor_by_name",
    "predictor_names",
    "register_predictor",
    "AdamsBashforth",
    "DataDrivenPredictor",
    "mgs_estimate",
    "ConstantPredictor",
    "LinearPredictor",
    "AitkenPredictor",
    "IQNILSPredictor",
    "AdaptiveSController",
]
