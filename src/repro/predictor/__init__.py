"""Initial-guess predictors for the iterative solver (paper §2.2, Eq. 3).

Two predictors are provided, mirroring the paper's comparison (Fig. 3):

* :class:`~repro.predictor.adams_bashforth.AdamsBashforth` — the
  conventional 4-step extrapolation used by the CRS-CG baselines;
* :class:`~repro.predictor.datadriven.DataDrivenPredictor` — the
  paper's data-driven method ([6]-style): Adams-Bashforth plus a
  per-subdomain modified-Gram-Schmidt estimate of the remaining
  correction, learned from the last ``s`` time steps.

:class:`~repro.predictor.adaptive.AdaptiveSController` adjusts ``s``
online so predictor@CPU time balances solver@GPU time (Fig. 4).
"""

from repro.predictor.adams_bashforth import AdamsBashforth
from repro.predictor.datadriven import DataDrivenPredictor, mgs_estimate
from repro.predictor.adaptive import AdaptiveSController

__all__ = [
    "AdamsBashforth",
    "DataDrivenPredictor",
    "mgs_estimate",
    "AdaptiveSController",
]
