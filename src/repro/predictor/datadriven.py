"""Data-driven initial-solution predictor (paper §3.2, method of [6]).

The Adams-Bashforth extrapolation captures low-order temporal modes;
what remains — the *correction* ``d_it = u_it - u_bar(AB)_it`` — is
estimated from history by orthogonal decomposition:

* keep the corrections (and forces — Eq. 3's ``X_it`` and ``F_it``)
  of the last ``s+1`` completed steps;
* form input/output pairs ``x_k = [d_k ; w f_{k+1}]``,
  ``y_k = d_{k+1}`` (``w`` balances force and correction scales; the
  force block captures the exactly-linear forced response, the
  correction block the free-vibration modes);
* per spatial subdomain, orthonormalize ``X = [x_1 .. x_s]`` by
  modified Gram-Schmidt, ``P = X U`` (``U`` upper triangular);
* for the new input ``x = [d_{it-1} ; w f_it]`` estimate
  ``y = Y U c`` with ``c = P^T x``  (i.e. ``y = Y U U^T X^T x``).

The subdomain split (the paper's "divides the target region into small
regions") keeps the estimate local and communication-free; here
subdomains are equal contiguous dof chunks so the whole batch of MGS
factorizations vectorizes across regions.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.predictor.adams_bashforth import AdamsBashforth
from repro.predictor.registry import Predictor, register_predictor
from repro.util import counters

__all__ = ["DataDrivenPredictor", "mgs_estimate"]


def mgs_estimate(
    X: np.ndarray, Y: np.ndarray, x: np.ndarray, rtol: float = 1e-12
) -> np.ndarray:
    """Batched MGS prediction ``y = Y U U^T X^T x`` per region.

    Parameters
    ----------
    X : (nreg, m_in, s) input history per region (``m_in`` may differ
        from the output length, e.g. correction rows stacked with
        force rows).
    Y : (nreg, m_out, s) output history per region.
    x : (nreg, m_in) new input per region.
    rtol : columns whose residual norm falls below ``rtol`` times the
        largest column norm are treated as linearly dependent and
        dropped (their coefficient is zeroed).

    Returns
    -------
    y : (nreg, m_out) estimated outputs.
    """
    X = np.asarray(X, dtype=float)
    Y = np.asarray(Y, dtype=float)
    x = np.asarray(x, dtype=float)
    nreg, m, s = X.shape

    # Batched modified Gram-Schmidt: Q (nreg, m, s), R (nreg, s, s)
    Q = X.copy()
    R = np.zeros((nreg, s, s))
    col_scale = np.linalg.norm(X, axis=1).max(axis=1)  # (nreg,)
    col_scale = np.where(col_scale == 0.0, 1.0, col_scale)
    alive = np.ones((nreg, s), dtype=bool)
    for j in range(s):
        for i in range(j):
            rij = np.einsum("rm,rm->r", Q[:, :, i], Q[:, :, j])
            R[:, i, j] = rij
            Q[:, :, j] -= rij[:, None] * Q[:, :, i]
        nrm = np.linalg.norm(Q[:, :, j], axis=1)
        dead = nrm <= rtol * col_scale
        alive[:, j] = ~dead
        safe = np.where(dead, 1.0, nrm)
        R[:, j, j] = np.where(dead, 1.0, nrm)
        Q[:, :, j] /= safe[:, None]
        Q[:, :, j] *= (~dead)[:, None]

    # c = Q^T x ; w solves R w = c (back substitution, batched)
    c = np.einsum("rms,rm->rs", Q, x)
    w = np.zeros((nreg, s))
    for j in range(s - 1, -1, -1):
        acc = c[:, j] - np.einsum("rk,rk->r", R[:, j, j + 1 :], w[:, j + 1 :])
        w[:, j] = np.where(alive[:, j], acc / R[:, j, j], 0.0)

    return np.einsum("rms,rs->rm", Y, w)


@register_predictor
class DataDrivenPredictor(Predictor):
    """The paper's data-driven predictor with adjustable history ``s``.

    Wraps an :class:`AdamsBashforth` extrapolator and adds the MGS
    correction estimate once enough history has accumulated.  Until
    then it behaves exactly like Adams-Bashforth, mirroring the paper's
    warm-up (the refinement solver guarantees accuracy throughout).

    Parameters
    ----------
    n : scalar dof count.
    dt : time step.
    s_max : maximum stored history pairs (paper: 32 on the 480 GB
        single-GH200 node, 11 on the 128 GB Alps node).
    n_regions : number of spatial subdomains (contiguous dof chunks).
    s : initial number of history pairs used (defaults to ``s_max``;
        the adaptive controller may change :attr:`s` every step).
    """

    name = "data-driven"
    description = (
        "Adams-Bashforth + per-subdomain MGS correction estimate (the "
        "paper's Eq. 3) — the heterogeneous pipeline's native predictor"
    )

    @classmethod
    def build(cls, n, dt, *, s_min=8, s_max=32, n_regions=16):
        """The exact construction :func:`repro.core.methods.run_method`
        has always used for the heterogeneous sets: start at ``s_min``
        (the adaptive controller earns more), cap at ``s_max``."""
        return cls(n, dt, s_max=s_max, n_regions=n_regions, s=s_min)

    def __init__(
        self,
        n: int,
        dt: float,
        s_max: int = 32,
        n_regions: int = 8,
        s: int | None = None,
        tag: str = "predictor.mgs",
    ) -> None:
        if s_max < 1:
            raise ValueError("s_max must be >= 1")
        if n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        self.n = int(n)
        self.dt = float(dt)
        self.s_max = int(s_max)
        # Guard against overfitting: each region must have several
        # times more rows than the widest basis it may be asked to fit,
        # otherwise the least-squares estimate extrapolates wildly.
        max_regions = max(1, int(n) // (4 * self.s_max))
        self.n_regions = int(min(n_regions, max_regions))
        self.s = int(s if s is not None else s_max)
        self.tag = tag
        self.ab = AdamsBashforth(n, dt)
        # corrections d_k = u_k - u_bar(AB)_k for the last s_max+1 steps,
        # with the force f_k that produced each (Eq. 3's F_it store)
        self._corr: deque[np.ndarray] = deque(maxlen=self.s_max + 1)
        self._force: deque[np.ndarray] = deque(maxlen=self.s_max + 1)
        self._last_ab: np.ndarray | None = None

        m = -(-self.n // self.n_regions)  # ceil
        self._region_len = m
        self._padded = m * self.n_regions

    # -- configuration -------------------------------------------------
    @property
    def s_effective(self) -> int:
        """History pairs actually usable right now."""
        return max(0, min(self.s, len(self._corr) - 1))

    def set_s(self, s: int) -> None:
        self.s = int(np.clip(s, 1, self.s_max))

    def memory_bytes(self) -> int:
        """CPU-side training-data footprint (the paper's ``n x s``
        stores of both responses and forces)."""
        return 8 * self.n * (len(self._corr) + len(self._force)) + self.ab.memory_bytes()

    def state_dict(self) -> dict:
        """JSON-able snapshot of everything :meth:`predict` reads:
        the current ``s``, the AB extrapolator, the correction/force
        history and the pending ``_last_ab`` (non-``None`` between a
        ``predict`` and its ``observe`` — exactly the situation of the
        trailing process set at a pipeline checkpoint boundary)."""
        return {
            "s": self.s,
            "ab": self.ab.state_dict(),
            "corr": list(self._corr),
            "force": list(self._force),
            "last_ab": self._last_ab,
        }

    def load_state_dict(self, doc: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.s = int(np.clip(int(doc["s"]), 1, self.s_max))
        self.ab.load_state_dict(doc["ab"])
        self._corr = deque(
            (np.asarray(d, dtype=float) for d in doc["corr"]),
            maxlen=self.s_max + 1,
        )
        self._force = deque(
            (np.asarray(f, dtype=float) for f in doc["force"]),
            maxlen=self.s_max + 1,
        )
        last = doc.get("last_ab")
        self._last_ab = None if last is None else np.asarray(last, dtype=float)

    # -- prediction ----------------------------------------------------
    def _to_regions(self, v: np.ndarray) -> np.ndarray:
        buf = np.zeros(self._padded)
        buf[: self.n] = v
        return buf.reshape(self.n_regions, self._region_len)

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        """Initial guess for the upcoming step (Eq. 3).

        ``f_next`` is the external force of the step being predicted;
        when provided (and the stored force history is not identically
        zero), the regression input is the stacked
        ``[d_{it-1} ; w f_it]`` so forced response is captured too.
        """
        u_ab = self.ab.predict()
        self._last_ab = u_ab.copy()
        s = self.s_effective
        if s < 1:
            return u_ab

        hist = list(self._corr)[-(s + 1):]
        X = np.stack(hist[:-1], axis=1)  # (n, s): d_{it-s-1} .. d_{it-2}
        Y = np.stack(hist[1:], axis=1)  # (n, s): d_{it-s}   .. d_{it-1}
        x_new = hist[-1]  # d_{it-1}

        # force block: f_k is paired with output d_k
        fh = list(self._force)[-(s + 1):]
        F = np.stack(fh[1:], axis=1)  # (n, s) forces of the output steps
        f_in = (
            np.zeros(self.n) if f_next is None else np.asarray(f_next, dtype=float)
        )
        scale_d = float(np.mean(np.linalg.norm(X, axis=0)))
        scale_f = float(np.mean(np.linalg.norm(F, axis=0)))
        use_force = scale_f > 0.0 and scale_d > 0.0
        w_f = scale_d / scale_f if use_force else 0.0

        Xr = np.stack([self._to_regions(X[:, k]) for k in range(s)], axis=2)
        Yr = np.stack([self._to_regions(Y[:, k]) for k in range(s)], axis=2)
        xr = self._to_regions(x_new)
        if use_force:
            Fr = np.stack([self._to_regions(w_f * F[:, k]) for k in range(s)], axis=2)
            fr = self._to_regions(w_f * f_in)
            Xr = np.concatenate([Xr, Fr], axis=1)  # stack rows per region
            xr = np.concatenate([xr, fr], axis=1)
        yr = mgs_estimate(Xr, Yr, xr)
        d_hat = yr.reshape(-1)[: self.n]

        # MGS cost: ~2ns^2 (factorization) + 4ns (projection/estimate);
        # streaming X (and F) and Y once plus the new input/output.
        rows = 2 if use_force else 1
        counters.charge(
            self.tag,
            2.0 * rows * self.n * s * s + 4.0 * rows * self.n * s,
            8.0 * self.n * ((1 + rows) * s + 2),
        )
        return u_ab + d_hat

    def observe(self, u: np.ndarray, v: np.ndarray, f: np.ndarray | None = None) -> None:
        """Record the refined solution (and its force) for the
        completed step."""
        if self._last_ab is None:
            # First step: AB predicted from empty history (zeros).
            self._last_ab = np.zeros(self.n)
        self._corr.append(u - self._last_ab)
        self._force.append(
            np.zeros(self.n) if f is None else np.asarray(f, dtype=float).copy()
        )
        self.ab.observe(u, v)
        self._last_ab = None
