"""Constant/linear extrapolation ladder — the floor of the predictor zoo.

The classical predictor ladder from partitioned-coupling practice
(CoCoNuT ships the same rungs under ``predictors/``): degree-0 and
degree-1 polynomial extrapolation of the *displacement* history alone,
no velocities, no learning.  They exist as honest baselines — any
history-based accelerator must beat ``linear`` to earn its complexity
— and as exactness anchors for the property suite (degree-``k``
extrapolation reproduces degree-``<= k`` polynomial trajectories to
rounding).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.predictor.registry import Predictor, register_predictor
from repro.sparse.traffic import vector_traffic
from repro.util import counters

__all__ = ["ConstantPredictor", "LinearPredictor"]


@register_predictor
class ConstantPredictor(Predictor):
    """Degree-0 extrapolation: the guess is the last converged
    displacement (zeros before any history exists)."""

    name = "constant"
    description = (
        "repeat the last converged displacement (degree-0 ladder rung)"
    )

    def __init__(self, n: int, dt: float, tag: str = "predictor.const") -> None:
        self.n = int(n)
        self.dt = float(dt)
        self.tag = tag
        self._u = np.zeros(self.n)

    def memory_bytes(self) -> int:
        return 8 * self.n

    def state_dict(self) -> dict:
        return {"u": self._u}

    def load_state_dict(self, doc: dict) -> None:
        u = np.asarray(doc["u"], dtype=float)
        if u.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u = u

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        w = vector_traffic(self.n, n_reads=1, n_writes=1, flops_per_entry=0.0)
        counters.charge(self.tag, w.flops, w.bytes)
        return self._u.copy()

    def observe(self, u: np.ndarray, v: np.ndarray,
                f: np.ndarray | None = None) -> None:
        if u.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u = u.copy()


@register_predictor
class LinearPredictor(Predictor):
    """Degree-1 extrapolation on displacements:
    ``u_bar_it = 2 u_{it-1} - u_{it-2}``.

    Distinct from order-1 Adams-Bashforth (which integrates the stored
    *velocity*): this rung needs displacement history only, so it is
    exact on trajectories linear in time regardless of how the
    velocities behave.  With a single observed step it degrades to the
    constant rung.
    """

    name = "linear"
    description = (
        "two-point displacement extrapolation (degree-1 ladder rung)"
    )

    def __init__(self, n: int, dt: float, tag: str = "predictor.linear") -> None:
        self.n = int(n)
        self.dt = float(dt)
        self.tag = tag
        self._u_hist: deque[np.ndarray] = deque(maxlen=2)

    def memory_bytes(self) -> int:
        return 8 * self.n * len(self._u_hist)

    def state_dict(self) -> dict:
        return {"u_hist": list(self._u_hist)}

    def load_state_dict(self, doc: dict) -> None:
        hist = [np.asarray(u, dtype=float) for u in doc["u_hist"]]
        if any(u.shape != (self.n,) for u in hist):
            raise ValueError("state size mismatch")
        self._u_hist = deque(hist, maxlen=2)

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        k = len(self._u_hist)
        w = vector_traffic(self.n, n_reads=max(1, k), n_writes=1,
                           flops_per_entry=2.0 * (k > 1))
        counters.charge(self.tag, w.flops, w.bytes)
        if k == 0:
            return np.zeros(self.n)
        if k == 1:
            return self._u_hist[-1].copy()
        return 2.0 * self._u_hist[-1] - self._u_hist[-2]

    def observe(self, u: np.ndarray, v: np.ndarray,
                f: np.ndarray | None = None) -> None:
        if u.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u_hist.append(u.copy())
