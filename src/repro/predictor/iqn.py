"""IQN-ILS-style quasi-Newton correction of the Adams-Bashforth guess.

The interface quasi-Newton method with inverse least-squares Jacobian
(Degroote's IQN-ILS, the workhorse coupled solver of preCICE and
CoCoNuT) approximates how a fixed-point map's *residual increments*
translate into *solution increments* by solving a small least-squares
problem over a bounded window of secant pairs, instead of forming any
Jacobian.

Transplanted to time-step prediction: the fixed-point "residual" of
step ``it`` is the correction the refined solve applies on top of the
Adams-Bashforth extrapolation,

    d_it = u_it - u_bar(AB)_it .

Successive corrections evolve smoothly while the wavefield does, so a
surrogate linear model over the recent secant pairs

    V_j = d_{it-j} - d_{it-j-1}   (inputs:  correction increments)
    W_j = d_{it-j+1} - d_{it-j}   (outputs: the increments they led to)

predicts the upcoming correction from the newest observed increment
``dx = d_{it-1} - d_{it-2}``: solve ``min_c ||V c - dx||`` via economy
QR and take

    d_hat_it = d_{it-1} + W c ,      guess = u_bar(AB)_it + d_hat_it .

Near-linearly-dependent columns are filtered the way preCICE's QR1
filter does — diagonal entries of ``R`` below ``filter_rtol`` times
the largest are dropped (newest-first ordering keeps the freshest
secants) — otherwise stretches of near-periodic motion make ``V``
rank-deficient and the least-squares coefficients explode.

Unlike :class:`~repro.predictor.datadriven.DataDrivenPredictor` this
keeps *one global* window (no per-subdomain split), needs no force
history, and deliberately exposes no ``set_s`` — the window is fixed at
build time, so the adaptive controller leaves it alone.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.predictor.adams_bashforth import AdamsBashforth
from repro.predictor.registry import Predictor, register_predictor
from repro.util import counters

__all__ = ["IQNILSPredictor"]


@register_predictor
class IQNILSPredictor(Predictor):
    """Quasi-Newton (IQN-ILS) correction over a bounded secant window.

    Parameters
    ----------
    n : scalar dof count.
    dt : time step.
    window : maximum secant pairs kept (the least-squares history
        bound; the property suite asserts it is never exceeded).
    filter_rtol : relative diagonal threshold of the QR filter for
        near-dependent secant columns.
    """

    name = "iqn-ils"
    description = (
        "quasi-Newton correction with an IQN-ILS least-squares "
        "surrogate Jacobian over a bounded, QR-filtered secant window"
    )

    @classmethod
    def build(cls, n, dt, *, s_min=8, s_max=32, n_regions=16):
        """Map the run's history budget onto the secant window: the
        window plays the role ``s`` plays for the data-driven
        predictor, so it gets the same cap."""
        return cls(n, dt, window=s_max)

    def __init__(
        self,
        n: int,
        dt: float,
        window: int = 8,
        filter_rtol: float = 1e-8,
        tag: str = "predictor.iqn",
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.n = int(n)
        self.dt = float(dt)
        self.window = int(window)
        self.filter_rtol = float(filter_rtol)
        self.tag = tag
        self.ab = AdamsBashforth(n, dt, tag=tag)
        # corrections need window+2 entries to yield `window` V-columns
        self._corr: deque[np.ndarray] = deque(maxlen=self.window + 2)
        self._last_ab: np.ndarray | None = None

    @property
    def s_effective(self) -> int:
        """Secant pairs the next prediction will consume."""
        return max(0, min(self.window, len(self._corr) - 2))

    def memory_bytes(self) -> int:
        return 8 * self.n * len(self._corr) + self.ab.memory_bytes()

    def state_dict(self) -> dict:
        return {
            "ab": self.ab.state_dict(),
            "corr": list(self._corr),
            "last_ab": self._last_ab,
        }

    def load_state_dict(self, doc: dict) -> None:
        self.ab.load_state_dict(doc["ab"])
        corr = [np.asarray(d, dtype=float) for d in doc["corr"]]
        if any(d.shape != (self.n,) for d in corr):
            raise ValueError("state size mismatch")
        self._corr = deque(corr, maxlen=self.window + 2)
        last = doc.get("last_ab")
        self._last_ab = None if last is None else np.asarray(last, dtype=float)

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        u_ab = self.ab.predict()
        self._last_ab = u_ab.copy()
        s = self.s_effective
        if s < 1:
            return u_ab

        d = list(self._corr)
        # Newest-first columns so the QR filter, which walks the
        # diagonal in order, sacrifices the *stalest* secants first.
        V = np.stack(
            [d[-1 - j] - d[-2 - j] for j in range(1, s + 1)], axis=1
        )
        W = np.stack([d[-j] - d[-1 - j] for j in range(1, s + 1)], axis=1)
        dx = d[-1] - d[-2]

        c = self._filtered_lstsq(V, dx)
        d_hat = d[-1] + W @ c

        # cost: economy QR ~2ns^2, two n x s products, vector updates
        counters.charge(
            self.tag,
            2.0 * self.n * s * s + 4.0 * self.n * s,
            8.0 * self.n * (2 * s + 3),
        )
        return u_ab + d_hat

    def _filtered_lstsq(self, V: np.ndarray, dx: np.ndarray) -> np.ndarray:
        """Least-squares coefficients with iterative QR1 filtering:
        drop columns whose ``|R_jj|`` falls below ``filter_rtol`` times
        the largest diagonal entry, re-factorize, repeat until clean.
        Returns coefficients in V's original column order (dropped
        columns get 0)."""
        s = V.shape[1]
        keep = list(range(s))
        c = np.zeros(s)
        while keep:
            Q, R = np.linalg.qr(V[:, keep], mode="reduced")
            diag = np.abs(np.diag(R))
            cap = float(diag.max())
            if cap == 0.0:
                return np.zeros(s)
            bad = [j for j, dj in enumerate(diag) if dj <= self.filter_rtol * cap]
            if not bad:
                ck = np.linalg.solve(R, Q.T @ dx)
                c = np.zeros(s)
                c[keep] = ck
                return c
            # Drop the stalest offending column (largest index =
            # oldest, given newest-first ordering) and retry.
            keep.pop(bad[-1])
        return np.zeros(s)

    def observe(self, u: np.ndarray, v: np.ndarray,
                f: np.ndarray | None = None) -> None:
        if u.shape != (self.n,) or v.shape != (self.n,):
            raise ValueError("state size mismatch")
        if self._last_ab is None:
            # Resume bootstrap / first step: AB would have predicted
            # from the stored history (zeros initially).
            self._last_ab = self.ab.predict()
        self._corr.append(u - self._last_ab)
        self.ab.observe(u, v)
        self._last_ab = None
