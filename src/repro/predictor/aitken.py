"""Aitken dynamic relaxation of the Adams-Bashforth guess.

CoCoNuT's ``coupled_solvers/aitken.py`` accelerates fixed-point
coupling iterations by relaxing each new guess toward the previous
iterate with a dynamically updated factor

    omega_{k+1} = -omega_k * (r_k . (r_{k+1} - r_k)) / ||r_{k+1} - r_k||^2

where ``r`` is the guess residual.  Transplanted to time-step
prediction, the "iterate" is the per-step extrapolation: the guess is

    u_bar_it = u_{it-1} + omega * (u_bar(AB)_it - u_{it-1})

— a relaxation of the Adams-Bashforth *increment* — and the residual
observed after the solve, ``r_it = u_it - u_bar_it``, drives the same
secant update of ``omega``.  When the extrapolation systematically
overshoots (irregular sources: rupture arrivals, aftershock
re-bootstraps), ``omega`` backs off below 1 and the guess stays closer
to the last converged state; on smooth stretches it rides at the
``omega_max`` clamp and the predictor degrades gracefully toward plain
AB (the ``omega_init=1`` warm-up *is* plain AB).

``omega`` is clamped to ``[omega_min, omega_max]`` — the update is a
1-D secant step and unguarded it can blow up or change sign on nearly
parallel residuals (the same reason CoCoNuT clamps it).
"""

from __future__ import annotations

import numpy as np

from repro.predictor.adams_bashforth import AdamsBashforth
from repro.predictor.registry import Predictor, register_predictor
from repro.sparse.traffic import vector_traffic
from repro.util import counters

__all__ = ["AitkenPredictor"]


@register_predictor
class AitkenPredictor(Predictor):
    """Dynamically relaxed Adams-Bashforth extrapolation.

    Parameters
    ----------
    n : scalar dof count.
    dt : time step.
    order : order of the underlying AB extrapolation.
    omega_init : starting relaxation factor (1 = plain AB).
    omega_min, omega_max : clamp of the dynamic factor; the property
        suite asserts omega never leaves this interval.
    """

    name = "aitken"
    description = (
        "Adams-Bashforth increment relaxed by a dynamic Aitken omega "
        "(updated from successive guess-residual differences, clamped)"
    )

    def __init__(
        self,
        n: int,
        dt: float,
        order: int = 4,
        omega_init: float = 1.0,
        omega_min: float = 0.1,
        omega_max: float = 2.0,
        tag: str = "predictor.aitken",
    ) -> None:
        if not 0.0 < omega_min <= omega_init <= omega_max:
            raise ValueError("need 0 < omega_min <= omega_init <= omega_max")
        self.n = int(n)
        self.dt = float(dt)
        self.omega = float(omega_init)
        self.omega_min = float(omega_min)
        self.omega_max = float(omega_max)
        self.tag = tag
        self.ab = AdamsBashforth(n, dt, order=order, tag=tag)
        self._u = np.zeros(self.n)  # last converged displacement
        self._last_guess: np.ndarray | None = None
        self._r_prev: np.ndarray | None = None

    def memory_bytes(self) -> int:
        extra = sum(
            8 * self.n
            for buf in (self._u, self._last_guess, self._r_prev)
            if buf is not None
        )
        return self.ab.memory_bytes() + extra

    def state_dict(self) -> dict:
        return {
            "ab": self.ab.state_dict(),
            "u": self._u,
            "omega": self.omega,
            "last_guess": self._last_guess,
            "r_prev": self._r_prev,
        }

    def load_state_dict(self, doc: dict) -> None:
        self.ab.load_state_dict(doc["ab"])
        u = np.asarray(doc["u"], dtype=float)
        if u.shape != (self.n,):
            raise ValueError("state size mismatch")
        self._u = u
        self.omega = float(
            np.clip(float(doc["omega"]), self.omega_min, self.omega_max)
        )
        last = doc.get("last_guess")
        self._last_guess = None if last is None else np.asarray(last, dtype=float)
        r = doc.get("r_prev")
        self._r_prev = None if r is None else np.asarray(r, dtype=float)

    def predict(self, f_next: np.ndarray | None = None) -> np.ndarray:
        u_ab = self.ab.predict()
        guess = self._u + self.omega * (u_ab - self._u)
        self._last_guess = guess.copy()
        w = vector_traffic(self.n, n_reads=2, n_writes=1, flops_per_entry=3.0)
        counters.charge(self.tag, w.flops, w.bytes)
        return guess

    def observe(self, u: np.ndarray, v: np.ndarray,
                f: np.ndarray | None = None) -> None:
        if u.shape != (self.n,) or v.shape != (self.n,):
            raise ValueError("state size mismatch")
        if self._last_guess is not None:
            r = u - self._last_guess
            if self._r_prev is not None:
                dr = r - self._r_prev
                denom = float(dr @ dr)
                if denom > 0.0 and np.isfinite(denom):
                    self.omega = float(
                        np.clip(
                            -self.omega * float(self._r_prev @ dr) / denom,
                            self.omega_min,
                            self.omega_max,
                        )
                    )
            self._r_prev = r
        self._u = u.copy()
        self.ab.observe(u, v)
        self._last_guess = None
