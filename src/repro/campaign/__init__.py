"""Many-scenario campaign engine.

The paper's throughput story is about *ensembles*: many ground
structures x many input waves x several methods, all day long.  This
package turns that into a first-class subsystem:

* :mod:`~repro.campaign.spec` — declarative :class:`CampaignSpec`
  grids expanded into content-hashed :class:`CampaignCell` work items
  with deterministic per-cell RNG seeds;
* :mod:`~repro.campaign.store` — on-disk :class:`ResultStore` with
  content-hash caching (re-runs skip every already-computed cell);
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` executing
  cells inline or over a ``concurrent.futures`` process pool, with a
  per-kind executor registry that the study modules plug into;
* :mod:`~repro.campaign.aggregate` — :class:`CampaignReport`
  per-method / per-scenario summary tables.

Distributed mode
----------------
``CampaignSpec(nparts=(1, 2, 4), methods=("ebe-mcg@cpu-gpu",))`` adds
the part-count axis: every scenario additionally runs through the
distributed part-local solver (:func:`repro.sparse.distributed.\
distributed_pcg` — halo exchange each CG iteration, bottleneck-part
compute, ``nic``-lane comm time) at each part count.  Single-part
cells keep their pre-axis content hash, so growing a cached campaign
with an ``nparts`` axis recomputes only the new part counts; the
scenario seed is nparts-independent, so scaling sweeps compare
identical physics.  Weak/strong-scaling helpers live in
:mod:`repro.studies.weakscaling`.

Scenario axis
-------------
``CampaignSpec(scenarios=("impulse", "fault-rupture", ...))`` fans
every cell over registered workload scenarios
(:mod:`repro.workloads.scenario` — distinct ground-structure x
source-process bundles).  Default-scenario cells keep their pre-axis
content hash, and the cell seed is scenario-independent, so scenario
sweeps compare identical random draws.  Cross-scenario difficulty
helpers live in :mod:`repro.studies.scenarios`.

CLI: ``python -m repro campaign --models stratified,basin,slanted
--waves 2 --methods crs-cg@gpu,ebe-mcg@cpu-gpu --jobs 2``
(add ``--nparts 1,2,4`` with ``--methods ebe-mcg@cpu-gpu`` for the
distributed axis, ``--scenario impulse,aftershocks`` for the workload
axis).
"""

from repro.campaign.aggregate import CampaignReport, format_table
from repro.campaign.runner import (
    CELL_EXECUTORS,
    CampaignRunner,
    CellOutcome,
    register_executor,
)
from repro.campaign.spec import (
    DEFAULT_SCENARIO,
    CampaignCell,
    CampaignSpec,
    WaveSpec,
    cell_key,
    default_waves,
    derive_seed,
)
from repro.campaign.store import ResultStore

__all__ = [
    "DEFAULT_SCENARIO",
    "CampaignSpec",
    "CampaignCell",
    "WaveSpec",
    "cell_key",
    "derive_seed",
    "default_waves",
    "CampaignRunner",
    "CellOutcome",
    "CELL_EXECUTORS",
    "register_executor",
    "ResultStore",
    "CampaignReport",
    "format_table",
]
