"""Many-scenario campaign engine.

The paper's throughput story is about *ensembles*: many ground
structures x many input waves x several methods, all day long.  This
package turns that into a first-class subsystem:

* :mod:`~repro.campaign.spec` — declarative :class:`CampaignSpec`
  grids expanded into content-hashed :class:`CampaignCell` work items
  with deterministic per-cell RNG seeds;
* :mod:`~repro.campaign.store` — on-disk :class:`ResultStore` with
  content-hash caching (re-runs skip every already-computed cell);
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` executing
  cells inline or over a ``concurrent.futures`` process pool, with a
  per-kind executor registry that the study modules plug into;
* :mod:`~repro.campaign.aggregate` — :class:`CampaignReport`
  per-method / per-scenario summary tables.

CLI: ``python -m repro campaign --models stratified,basin,slanted
--waves 2 --methods crs-cg@gpu,ebe-mcg@cpu-gpu --jobs 2``.
"""

from repro.campaign.aggregate import CampaignReport, format_table
from repro.campaign.runner import (
    CELL_EXECUTORS,
    CampaignRunner,
    CellOutcome,
    register_executor,
)
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    WaveSpec,
    cell_key,
    default_waves,
    derive_seed,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "WaveSpec",
    "cell_key",
    "derive_seed",
    "default_waves",
    "CampaignRunner",
    "CellOutcome",
    "CELL_EXECUTORS",
    "register_executor",
    "ResultStore",
    "CampaignReport",
    "format_table",
]
