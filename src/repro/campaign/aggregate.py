"""Campaign aggregation: per-method / per-scenario summary tables.

A campaign produces one result document per cell; the report distils
them into the cross-sections the paper reasons about — how does each
*method* fare over all scenarios (Table 3's rows, generalized), and
how hard is each *scenario* (ground model x wave) across methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.campaign.spec import DEFAULT_PREDICTOR, DEFAULT_SCENARIO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner -> here)
    from repro.campaign.runner import CellOutcome
    from repro.campaign.spec import CampaignSpec

__all__ = ["CampaignReport", "format_table"]


def format_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (same layout the benchmarks emit)."""
    if not rows:
        return f"{title}\n{'=' * len(title)}\n(no rows)\n"
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


@dataclass
class CampaignReport:
    """Outcome of one campaign run, with aggregation helpers."""

    spec: "CampaignSpec"
    outcomes: list["CellOutcome"] = field(default_factory=list)

    # -- bookkeeping --------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.outcomes)

    @property
    def n_cached(self) -> int:
        return sum(o.cached for o in self.outcomes)

    @property
    def n_computed(self) -> int:
        return sum(o.ok and not o.cached for o in self.outcomes)

    @property
    def n_failed(self) -> int:
        return sum(not o.ok for o in self.outcomes)

    def failures(self) -> list[tuple[str, str]]:
        return [(o.cell.label, o.error) for o in self.outcomes if not o.ok]

    # -- flat rows ----------------------------------------------------
    def rows(self) -> list[dict]:
        """One flat record per successful cell."""
        out = []
        for o in self.outcomes:
            if not o.ok:
                continue
            p = o.cell.params
            s = o.result.get("summary", {})
            out.append(
                {
                    "scenario": p.get("scenario", DEFAULT_SCENARIO),
                    "model": p.get("model"),
                    "wave": p.get("wave", {}).get("name"),
                    "method": p.get("method"),
                    "nparts": p.get("nparts", 1),
                    "precision": p.get("precision", "fp64"),
                    "predictor": p.get("predictor", DEFAULT_PREDICTOR),
                    "resolution": "x".join(map(str, p.get("resolution", []))),
                    "n_dofs": o.result.get("n_dofs"),
                    "cached": o.cached,
                    "elapsed_per_step_per_case_s": s.get(
                        "elapsed_per_step_per_case_s"
                    ),
                    "iterations_per_step": s.get("iterations_per_step"),
                    "predictor_s_used": s.get("predictor_s_used"),
                    "achieved_relres": s.get("achieved_relres"),
                    "energy_per_step_per_case_J": s.get(
                        "energy_per_step_per_case_J"
                    ),
                }
            )
        return out

    # -- cross-sections -----------------------------------------------
    def _grouped(self, key_fn) -> dict[tuple, list[dict]]:
        groups: dict[tuple, list[dict]] = {}
        for row in self.rows():
            groups.setdefault(key_fn(row), []).append(row)
        return groups

    @staticmethod
    def _agg(rows: list[dict]) -> dict:
        def mean_of(k):
            vals = [r[k] for r in rows if r[k] is not None]
            return float(np.mean(vals)) if vals else float("nan")

        def worst_of(k):
            vals = [r[k] for r in rows if r.get(k) is not None]
            return float(max(vals)) if vals else float("nan")

        return {
            "n_cells": len(rows),
            "elapsed_per_step_per_case_s": mean_of("elapsed_per_step_per_case_s"),
            "iterations_per_step": mean_of("iterations_per_step"),
            "predictor_s_used": mean_of("predictor_s_used"),
            "achieved_relres": worst_of("achieved_relres"),
            "energy_per_step_per_case_J": mean_of("energy_per_step_per_case_J"),
        }

    @staticmethod
    def _variant(r: dict) -> str:
        """Display name of a method variant: part count, storage
        precision and predictor are appended at non-default values
        (``method@p4``, ``method@fp21``, ``method@aitken``) —
        averaging across any of these axes would present a meaningless
        blend as the method's throughput."""
        m = r["method"]
        if r["nparts"] != 1:
            m += f"@p{r['nparts']}"
        if r["precision"] != "fp64":
            m += f"@{r['precision']}"
        if r["predictor"] != DEFAULT_PREDICTOR:
            m += f"@{r['predictor']}"
        return m

    def by_method(self) -> dict[str, dict]:
        """Mean per-cell metrics for each method variant (see
        :meth:`_variant`) over all scenarios."""
        return {
            k[0]: self._agg(rows)
            for k, rows in sorted(
                self._grouped(lambda r: (self._variant(r),)).items()
            )
        }

    def by_scenario(self) -> dict[tuple[str, str, str], dict]:
        """Mean per-cell metrics for each (scenario, model, wave)
        workload — the registered scenario first, then the ground
        structure and wave family it ran on.

        The mean runs over the campaign's whole method x nparts mix —
        every scenario carries the identical mix, so *relative*
        scenario hardness reads like-for-like; absolute values shift
        when the mix changes (as they always have when methods are
        added).
        """
        return {
            k: self._agg(rows)
            for k, rows in sorted(
                self._grouped(
                    lambda r: (r["scenario"], r["model"], r["wave"])
                ).items()
            )
        }

    def by_precision(self) -> dict[tuple[str, int, str], dict]:
        """Per (method, nparts, precision) aggregates, each annotated
        with the iteration inflation and speedup against its own fp64
        twin (``None`` when the campaign has no fp64 cell to anchor
        on) — the transprecision accuracy-vs-speed columns.
        """
        groups = self._grouped(
            lambda r: (r["method"], r["nparts"], r["precision"])
        )
        out: dict[tuple[str, int, str], dict] = {}
        for key, rows in sorted(groups.items()):
            method, nparts, prec = key
            agg = self._agg(rows)
            base = groups.get((method, nparts, "fp64"))
            inflation = speedup = None
            if base is not None:
                ref = self._agg(base)
                if agg["iterations_per_step"] and ref["iterations_per_step"]:
                    inflation = (
                        agg["iterations_per_step"] / ref["iterations_per_step"]
                    )
                if agg["elapsed_per_step_per_case_s"]:
                    speedup = (
                        ref["elapsed_per_step_per_case_s"]
                        / agg["elapsed_per_step_per_case_s"]
                    )
            agg["iteration_inflation"] = inflation
            agg["speedup_vs_fp64"] = speedup
            out[key] = agg
        return out

    # -- rendering ----------------------------------------------------
    def method_table(self) -> str:
        rows = [
            [
                m,
                str(a["n_cells"]),
                f"{a['elapsed_per_step_per_case_s']:.3e}",
                f"{a['iterations_per_step']:.1f}",
                f"{a['energy_per_step_per_case_J']:.3e}",
            ]
            for m, a in self.by_method().items()
        ]
        return format_table(
            f"campaign {self.spec.name}: per-method summary",
            ["method", "cells", "t/step/case [s]", "iters/step", "J/step/case"],
            rows,
        )

    def precision_table(self) -> str:
        def fmt(v, spec: str, missing: str = "-") -> str:
            return missing if v is None or v != v else format(v, spec)

        rows = [
            [
                f"{m}@p{p}" if p != 1 else m,
                prec,
                f"{a['elapsed_per_step_per_case_s']:.3e}",
                fmt(a["speedup_vs_fp64"], ".2f"),
                f"{a['iterations_per_step']:.1f}",
                fmt(a["iteration_inflation"], ".3f"),
                fmt(a["achieved_relres"], ".2e"),
            ]
            for (m, p, prec), a in self.by_precision().items()
        ]
        return format_table(
            f"campaign {self.spec.name}: transprecision summary",
            ["method", "precision", "t/step/case [s]", "speedup",
             "iters/step", "inflation", "achieved relres"],
            rows,
        )

    def scenario_table(self) -> str:
        rows = [
            [
                scenario,
                model,
                wave,
                str(a["n_cells"]),
                f"{a['elapsed_per_step_per_case_s']:.3e}",
                f"{a['iterations_per_step']:.1f}",
                "-" if a["predictor_s_used"] != a["predictor_s_used"]
                else f"{a['predictor_s_used']:.1f}",
                f"{a['achieved_relres']:.2e}",
            ]
            for (scenario, model, wave), a in self.by_scenario().items()
        ]
        return format_table(
            f"campaign {self.spec.name}: per-scenario summary",
            ["scenario", "model", "wave", "cells", "t/step/case [s]",
             "iters/step", "s_used", "achieved relres"],
            rows,
        )

    def cache_line(self) -> str:
        return (
            f"cells: {self.n_cells} total, {self.n_computed} computed, "
            f"{self.n_cached} cache hits, {self.n_failed} failed"
        )

    def render(self) -> str:
        parts = [self.method_table(), self.scenario_table()]
        # the transprecision cross-section only earns its space when a
        # reduced-precision cell exists (fp64-only campaigns render as
        # they always have)
        if any(r["precision"] != "fp64" for r in self.rows()):
            parts.append(self.precision_table())
        parts.append(self.cache_line())
        if self.n_failed:
            parts.append("failures:")
            parts.extend(f"  {label}: {err}" for label, err in self.failures())
        return "\n".join(parts)
