"""Campaign execution engine.

The runner turns a list of :class:`~repro.campaign.spec.CampaignCell`
work items into results:

1. probe the :class:`~repro.campaign.store.ResultStore` — cells whose
   content hash already has an artifact are *cache hits* and are never
   recomputed;
2. execute the misses, inline for ``jobs=1`` or through a
   ``concurrent.futures`` process pool (a worker initializer imports
   the study modules so every executor kind is registered under any
   multiprocessing start method; each cell rebuilds its problem from
   the spec parameters, so nothing heavyweight crosses the pickle
   boundary);
3. persist each fresh result as soon as it completes (an interrupted
   campaign keeps every finished cell) and aggregate the outcomes
   into a :class:`~repro.campaign.aggregate.CampaignReport`.

Executors are registered per cell *kind* with
:func:`register_executor`; the built-in ``"method"`` kind runs one
ensemble through :func:`repro.core.methods.run_method`.  Study modules
register their own kinds (``"ablation"``, ``"sensitivity"``) so their
sweeps ride the same caching/parallelism machinery.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.campaign.aggregate import CampaignReport
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore

__all__ = [
    "CELL_EXECUTORS",
    "register_executor",
    "CellOutcome",
    "CampaignRunner",
    "run_method_cell",
]

#: kind -> executor(params) -> JSON-able result dict.
CELL_EXECUTORS: dict[str, Callable[[dict], dict]] = {}


def register_executor(kind: str):
    """Decorator registering an executor for one cell kind."""

    def deco(fn: Callable[[dict], dict]):
        CELL_EXECUTORS[kind] = fn
        return fn

    return deco


def _worker_init() -> None:
    """Process-pool initializer: make sure every built-in executor is
    registered in the worker regardless of the multiprocessing start
    method (fork inherits the registry; spawn/forkserver re-import only
    this module, so the study kinds must be imported explicitly)."""
    with contextlib.suppress(ImportError):
        import repro.studies  # noqa: F401 - registers ablation/sensitivity


def _execute_cell(kind: str, params: dict) -> dict:
    """Module-level worker entry point (must stay picklable)."""
    try:
        fn = CELL_EXECUTORS[kind]
    except KeyError:
        raise ValueError(
            f"no executor registered for cell kind {kind!r}; "
            f"known kinds: {sorted(CELL_EXECUTORS)}"
        ) from None
    return fn(params)


@register_executor("method")
def run_method_cell(params: dict) -> dict:
    """Run one campaign grid cell: an ensemble of ``cases`` inputs on
    one scenario / ground model / method / resolution.

    The optional ``"scenario"`` entry selects a registered workload
    (:mod:`repro.workloads.scenario`); absent, the default
    random-impulse scenario reproduces the pre-registry executor
    bit-for-bit.  Per-case forces come from RNG streams spawned off
    the cell's content-derived seed, so results are independent of
    worker placement and grid composition.  An optional ``"nparts"``
    entry (> 1) runs the cell through the distributed part-local
    solver, and an optional ``"precision"`` entry (non-fp64) through
    the transprecision solver stack — the scenario seed is unchanged
    by all three axes, so sweeps compare identical random draws.
    """
    from repro.core.methods import run_method
    from repro.hardware.specs import module_by_name
    from repro.workloads.scenario import DEFAULT_SCENARIO, scenario_by_name

    scenario = scenario_by_name(params.get("scenario", DEFAULT_SCENARIO))()
    problem = scenario.build_problem(
        params["model"], tuple(params["resolution"])
    )
    forces = scenario.forces(
        problem, params["wave"], params["seed"], params["cases"]
    )
    steps = params["steps"]
    result = run_method(
        problem,
        forces,
        nt=steps,
        method=params["method"],
        module=module_by_name(params["module"]),
        eps=params["eps"],
        s_range=(params["s_min"], params["s_max"]),
        nparts=params.get("nparts", 1),
        precision=params.get("precision", "fp64"),
    )
    window = (max(1, steps * 5 // 8), steps + 1)
    return {
        "summary": result.summary(window),
        "window": list(window),
        "n_dofs": problem.n_dofs,
        "iterations_per_step": result.iterations_per_step(window),
        # same window and per-case normalization as the other columns
        "halo_time_per_step_per_case": result.halo_time_per_step_per_case(
            window
        ),
        # whole-run per-lane busy seconds — the totals the golden
        # regression fixtures pin (any cross-scenario timing drift
        # shows up here even when the windowed means stay put)
        "timeline_busy": {
            lane: result.timeline.busy_time(lane)
            for lane in ("cpu", "gpu", "c2c", "nic")
        },
    }


@dataclass
class CellOutcome:
    """One cell's fate in a campaign run."""

    cell: CampaignCell
    result: dict | None
    cached: bool = False
    error: str | None = None

    @property
    def key(self) -> str:
        return self.cell.key

    @property
    def ok(self) -> bool:
        return self.error is None


class CampaignRunner:
    """Executes campaign cells with caching and optional parallelism.

    Parameters
    ----------
    store : result store for cache probes and persistence; ``None``
        disables caching (every cell recomputes).
    jobs : worker processes; ``1`` executes inline (deterministic
        ordering, easiest to debug), ``>1`` fans the misses out over a
        process pool.
    """

    def __init__(self, store: ResultStore | None = None, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.jobs = jobs

    def run(self, spec: CampaignSpec) -> CampaignReport:
        """Run a grid campaign and write the store manifest."""
        outcomes = self.run_cells(spec.cells())
        if self.store is not None:
            self.store.write_manifest(
                {
                    "spec": spec.to_dict(),
                    "cells": [
                        {"key": o.key, "label": o.cell.label, "cached": o.cached,
                         "ok": o.ok}
                        for o in outcomes
                    ],
                }
            )
        return CampaignReport(spec=spec, outcomes=outcomes)

    def run_cells(self, cells: Sequence[CampaignCell]) -> list[CellOutcome]:
        """Core engine: probe cache, execute misses, persist results.

        Returns outcomes in the input cell order regardless of worker
        completion order.
        """
        outcomes: dict[int, CellOutcome] = {}
        misses: list[int] = []
        for i, cell in enumerate(cells):
            cached = None
            if self.store is not None and self.store.has(cell.key):
                try:
                    cached = self.store.load(cell.key)["result"]
                except (ValueError, KeyError, OSError):
                    cached = None  # corrupt artifact -> recompute
            if cached is not None:
                outcomes[i] = CellOutcome(cell=cell, result=cached, cached=True)
            else:
                misses.append(i)

        if misses and self.jobs == 1:
            for i in misses:
                outcomes[i] = self._finish(self._execute_one(cells[i]))
        elif misses:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(misses)),
                initializer=_worker_init,
            ) as pool:
                futs = {
                    pool.submit(_execute_cell, cells[i].kind, cells[i].params): i
                    for i in misses
                }
                for fut in concurrent.futures.as_completed(futs):
                    i = futs[fut]
                    try:
                        outcome = CellOutcome(cell=cells[i], result=fut.result())
                    except Exception as exc:  # noqa: BLE001 - per-cell isolation
                        outcome = CellOutcome(
                            cell=cells[i], result=None,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    outcomes[i] = self._finish(outcome)
        return [outcomes[i] for i in range(len(cells))]

    def _finish(self, outcome: CellOutcome) -> CellOutcome:
        """Persist a fresh result the moment it exists, so an
        interrupted campaign keeps every completed cell."""
        if self.store is not None and outcome.ok:
            self.store.save(outcome.cell, outcome.result)
        return outcome

    def _execute_one(self, cell: CampaignCell) -> CellOutcome:
        try:
            return CellOutcome(cell=cell, result=_execute_cell(cell.kind, cell.params))
        except Exception as exc:  # noqa: BLE001 - per-cell isolation
            return CellOutcome(
                cell=cell,
                result=None,
                error="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
            )
