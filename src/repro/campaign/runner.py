"""Campaign execution engine.

The runner turns a list of :class:`~repro.campaign.spec.CampaignCell`
work items into results:

1. probe the :class:`~repro.campaign.store.ResultStore` — cells whose
   content hash already has an artifact are *cache hits* and are never
   recomputed;
2. dedupe the misses by content key — two cells with the same key are
   the same computation, so the work runs once and the result fans
   back out to every index;
3. execute the unique misses, inline for ``jobs=1`` or through a
   ``concurrent.futures`` process pool (a worker initializer imports
   the study modules so every executor kind is registered under any
   multiprocessing start method; each cell rebuilds its problem from
   the spec parameters, so nothing heavyweight crosses the pickle
   boundary).  Each miss computes under the store's per-key advisory
   lock: concurrent campaigns sharing a store never double-compute,
   and whoever loses the race finds the winner's artifact when it
   re-probes under the lock;
4. persist each fresh result the moment it completes (an interrupted
   campaign keeps every finished cell), flush a resume checkpoint
   every ``checkpoint_every`` steps so a killed worker loses at most
   ``checkpoint_every`` steps of one cell, and aggregate the outcomes
   into a :class:`~repro.campaign.aggregate.CampaignReport`.

Executors are registered per cell *kind* with
:func:`register_executor`; the built-in ``"method"`` kind runs one
ensemble through :func:`repro.core.methods.run_method`.  Study modules
register their own kinds (``"ablation"``, ``"sensitivity"``) so their
sweeps ride the same caching/parallelism machinery.  An executor may
accept an optional ``ctx`` keyword to participate in
checkpoint/resume (see :func:`run_method_cell`); executors without it
keep working unchanged.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import inspect
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.campaign.aggregate import CampaignReport
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore

__all__ = [
    "CELL_EXECUTORS",
    "register_executor",
    "CellOutcome",
    "CampaignRunner",
    "run_method_cell",
]

#: kind -> executor(params[, ctx]) -> JSON-able result dict.
CELL_EXECUTORS: dict[str, Callable[..., dict]] = {}


def register_executor(kind: str):
    """Decorator registering an executor for one cell kind."""

    def deco(fn: Callable[..., dict]):
        CELL_EXECUTORS[kind] = fn
        return fn

    return deco


def _worker_init() -> None:
    """Process-pool initializer: make sure every built-in executor is
    registered in the worker regardless of the multiprocessing start
    method (fork inherits the registry; spawn/forkserver re-import only
    this module, so the study kinds must be imported explicitly)."""
    with contextlib.suppress(ImportError):
        import repro.studies  # noqa: F401 - registers ablation/sensitivity


def _format_error(exc: BaseException) -> str:
    """The one per-cell error format, shared by the inline and pool
    paths — the same failure must read identically no matter which
    executor ran it."""
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def _accepts_ctx(fn: Callable) -> bool:
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins/partials without signature
        return False
    params = sig.parameters.values()
    return any(
        p.name == "ctx" or p.kind is inspect.Parameter.VAR_KEYWORD
        for p in params
    )


def _execute_cell(kind: str, params: dict, ctx: dict | None = None) -> dict:
    """Module-level worker entry point (must stay picklable)."""
    try:
        fn = CELL_EXECUTORS[kind]
    except KeyError:
        raise ValueError(
            f"no executor registered for cell kind {kind!r}; "
            f"known kinds: {sorted(CELL_EXECUTORS)}"
        ) from None
    if ctx is not None and _accepts_ctx(fn):
        return fn(params, ctx=ctx)
    return fn(params)


def _compute_miss(
    cell: CampaignCell,
    store_root: str | None,
    checkpoint_every: int,
    resume: bool,
) -> dict:
    """Compute one cache miss — the one code path for inline and pooled
    execution (module-level and argument-picklable, so it crosses the
    process-pool boundary under any start method).

    With a store, the whole transaction happens under the cell's
    advisory lock: re-probe (another campaign may have finished the
    cell while we waited), execute — resuming from / flushing to the
    cell's checkpoint — persist the artifact atomically, drop the
    checkpoint.  Returns ``{"result": ..., "cached": bool}``.
    """
    if store_root is None:
        return {"result": _execute_cell(cell.kind, cell.params), "cached": False}
    store = ResultStore(store_root)
    with store.lock(cell.key):
        try:
            return {"result": store.load(cell.key)["result"], "cached": True}
        except (FileNotFoundError, ValueError, KeyError, OSError):
            pass  # still a miss (or corrupt) -> compute it
        ctx = {
            "key": cell.key,
            "checkpoint_path": str(store.checkpoint_path(cell.key)),
            "checkpoint_every": int(checkpoint_every),
            "resume": bool(resume),
        }
        result = _execute_cell(cell.kind, cell.params, ctx)
        store.save(cell, result)
        store.clear_checkpoint(cell.key)
        return {"result": result, "cached": False}


@register_executor("method")
def run_method_cell(params: dict, ctx: dict | None = None) -> dict:
    """Run one campaign grid cell: an ensemble of ``cases`` inputs on
    one scenario / ground model / method / resolution.

    The optional ``"scenario"`` entry selects a registered workload
    (:mod:`repro.workloads.scenario`); absent, the default
    random-impulse scenario reproduces the pre-registry executor
    bit-for-bit.  Per-case forces come from RNG streams spawned off
    the cell's content-derived seed, so results are independent of
    worker placement and grid composition.  An optional ``"nparts"``
    entry (> 1) runs the cell through the distributed part-local
    solver, an optional ``"precision"`` entry (non-fp64) through
    the transprecision solver stack, and an optional ``"backend"``
    entry (non-numpy) through an accelerated array backend, an
    optional ``"precond"`` entry (non-``"bj"``) through an alternative
    preconditioner family, and an optional ``"predictor"`` entry
    (non-``"auto"``) through a registered initial-guess predictor
    (:mod:`repro.predictor.registry`) — the scenario seed is unchanged
    by all six axes, so sweeps compare identical random draws.  The
    backend always
    comes from the cell
    params (never the ``REPRO_BACKEND`` ambient default): the result
    is cached under the cell's content hash, so the environment must
    not influence what gets computed.

    ``ctx`` (supplied by the runner when a store is attached) enables
    crash-safe execution: every ``ctx["checkpoint_every"]`` steps the
    incremental solver-state tail since the previous flush is appended
    to the journal at ``ctx["checkpoint_path"]`` (O(1) bytes per step),
    and with ``ctx["resume"]`` a pending checkpoint journal restarts
    the run from its merged saved step instead of step 0.
    Checkpointed, resumed and uninterrupted executions of the same
    cell are bit-identical.
    """
    import contextlib
    import os

    from repro.core.methods import run_method
    from repro.hardware.specs import module_by_name
    from repro.io.results import (
        append_campaign_checkpoint,
        atomic_write_text,
        load_campaign_checkpoint,
    )
    from repro.workloads.scenario import DEFAULT_SCENARIO, scenario_by_name

    scenario = scenario_by_name(params.get("scenario", DEFAULT_SCENARIO))()
    problem = scenario.build_problem(
        params["model"], tuple(params["resolution"])
    )
    forces = scenario.forces(
        problem, params["wave"], params["seed"], params["cases"]
    )
    steps = params["steps"]

    start_state = None
    checkpoint_every = 0
    on_checkpoint = None
    if ctx is not None and ctx.get("checkpoint_path"):
        path = ctx["checkpoint_path"]
        checkpoint_every = int(ctx.get("checkpoint_every", 0))
        if ctx.get("resume"):
            import json as _json

            try:
                ck = load_campaign_checkpoint(path)
            except (FileNotFoundError, _json.JSONDecodeError):
                ck = None  # nothing (readable) to resume -> from step 0
            if ck is not None:
                # schema passed; identity must match the cell exactly —
                # anything else is a store integrity problem, fail loudly
                if ck.get("params") != params:
                    raise ValueError(
                        "checkpoint params do not match cell "
                        f"{ctx.get('key')!r}"
                    )
                start_state = ck["state"]
                if checkpoint_every > 0:
                    # Compact the journal to its merged document so
                    # later flushes append after a guaranteed-clean
                    # final newline (the old journal may end in the
                    # torn line the crash left behind).
                    atomic_write_text(path, _json.dumps(ck) + "\n")
        if start_state is None:
            # Fresh start (no resume requested, or nothing readable to
            # resume from): drop any stale journal so the appended tails
            # below can never concatenate onto an abandoned run's lines.
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)
        if checkpoint_every > 0:
            def on_checkpoint(state_doc: dict) -> None:
                append_campaign_checkpoint(
                    {
                        "key": ctx["key"],
                        "kind": "method",
                        "params": params,
                        "step": state_doc["step"],
                        "state": state_doc,
                    },
                    path,
                )

    result = run_method(
        problem,
        forces,
        nt=steps,
        method=params["method"],
        module=module_by_name(params["module"]),
        eps=params["eps"],
        s_range=(params["s_min"], params["s_max"]),
        nparts=params.get("nparts", 1),
        precision=params.get("precision", "fp64"),
        backend=params.get("backend", "numpy"),
        precond=params.get("precond", "bj"),
        predictor=params.get("predictor", "auto"),
        start_state=start_state,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
    window = (max(1, steps * 5 // 8), steps + 1)
    return {
        "summary": result.summary(window),
        "window": list(window),
        "n_dofs": problem.n_dofs,
        "iterations_per_step": result.iterations_per_step(window),
        # same window and per-case normalization as the other columns
        "halo_time_per_step_per_case": result.halo_time_per_step_per_case(
            window
        ),
        # whole-run per-lane busy seconds — the totals the golden
        # regression fixtures pin (any cross-scenario timing drift
        # shows up here even when the windowed means stay put)
        "timeline_busy": {
            lane: result.timeline.busy_time(lane)
            for lane in ("cpu", "gpu", "c2c", "nic")
        },
    }


@dataclass
class CellOutcome:
    """One cell's fate in a campaign run."""

    cell: CampaignCell
    result: dict | None
    cached: bool = False
    error: str | None = None

    @property
    def key(self) -> str:
        return self.cell.key

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        if not self.ok:
            return "failed"
        return "cached" if self.cached else "done"


class CampaignRunner:
    """Executes campaign cells with caching and optional parallelism.

    Parameters
    ----------
    store : result store for cache probes, persistence, per-key locks
        and checkpoints; ``None`` disables caching (every cell
        recomputes, and checkpoint/resume is unavailable).
    jobs : worker processes; ``1`` executes inline (deterministic
        ordering, easiest to debug), ``>1`` fans the unique misses out
        over a process pool.
    checkpoint_every : flush each in-flight cell's solver state to
        ``checkpoints/<key>.json`` every this many time steps (0 =
        never).  A killed worker then loses at most this many steps of
        one cell instead of the whole cell.
    mp_start_method : multiprocessing start method for the pool
        (``"fork"``/``"spawn"``/``"forkserver"``; ``None`` = platform
        default).  The spawn path is exercised in CI — results are
        start-method independent.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        checkpoint_every: int = 0,
        mp_start_method: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.store = store
        self.jobs = jobs
        self.checkpoint_every = checkpoint_every
        self.mp_start_method = mp_start_method

    def run(self, spec: CampaignSpec, resume: bool = False) -> CampaignReport:
        """Run a grid campaign and maintain the store manifest.

        The manifest is written twice, atomically: once when the
        campaign starts (``in_progress: true``, every cell
        ``"pending"``) and once at the end with each cell's final
        status — so after a crash the store says exactly which
        campaign died and what it still owed.  With ``resume=True``,
        interrupted cells restart from their ``checkpoints/<key>.json``
        state instead of step 0 (finished cells are ordinary cache
        hits either way).
        """
        cells = spec.cells()
        if self.store is not None:
            self.store.write_manifest(
                {
                    "spec": spec.to_dict(),
                    "in_progress": True,
                    "cells": [
                        {"key": c.key, "label": c.label, "status": "pending"}
                        for c in cells
                    ],
                }
            )
        outcomes = self.run_cells(cells, resume=resume)
        if self.store is not None:
            self.store.write_manifest(
                {
                    "spec": spec.to_dict(),
                    "in_progress": False,
                    "cells": [
                        {"key": o.key, "label": o.cell.label,
                         "cached": o.cached, "ok": o.ok,
                         "status": o.status}
                        for o in outcomes
                    ],
                }
            )
        return CampaignReport(spec=spec, outcomes=outcomes)

    def run_cells(
        self, cells: Sequence[CampaignCell], resume: bool = False
    ) -> list[CellOutcome]:
        """Core engine: probe cache, execute unique misses, persist
        results, fan duplicate-key results back out.

        Returns outcomes in the input cell order regardless of worker
        completion order.
        """
        outcomes: dict[int, CellOutcome] = {}
        misses: dict[str, list[int]] = {}  # key -> duplicate-key indices
        for i, cell in enumerate(cells):
            cached = None
            if self.store is not None and self.store.has(cell.key):
                try:
                    cached = self.store.load(cell.key)["result"]
                except (ValueError, KeyError, OSError):
                    cached = None  # corrupt artifact -> recompute
            if cached is not None:
                outcomes[i] = CellOutcome(cell=cell, result=cached, cached=True)
            else:
                misses.setdefault(cell.key, []).append(i)

        store_root = None if self.store is None else str(self.store.root)
        reps = {key: cells[idxs[0]] for key, idxs in misses.items()}
        payloads: dict[str, dict] = {}  # key -> payload or error marker

        if reps and self.jobs == 1:
            for key, cell in reps.items():
                try:
                    payloads[key] = _compute_miss(
                        cell, store_root, self.checkpoint_every, resume
                    )
                except Exception as exc:  # noqa: BLE001 - per-cell isolation
                    payloads[key] = {"error": _format_error(exc)}
        elif reps:
            ctx = (
                multiprocessing.get_context(self.mp_start_method)
                if self.mp_start_method
                else None
            )
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(reps)),
                initializer=_worker_init,
                mp_context=ctx,
            ) as pool:
                futs = {
                    pool.submit(
                        _compute_miss, cell, store_root,
                        self.checkpoint_every, resume,
                    ): key
                    for key, cell in reps.items()
                }
                for fut in concurrent.futures.as_completed(futs):
                    key = futs[fut]
                    try:
                        payloads[key] = fut.result()
                    except Exception as exc:  # noqa: BLE001 - per-cell isolation
                        payloads[key] = {"error": _format_error(exc)}

        for key, idxs in misses.items():
            payload = payloads[key]
            for i in idxs:
                outcomes[i] = CellOutcome(
                    cell=cells[i],
                    result=payload.get("result"),
                    cached=payload.get("cached", False),
                    error=payload.get("error"),
                )
        return [outcomes[i] for i in range(len(cells))]
