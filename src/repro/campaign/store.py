"""On-disk campaign result store with content-hash caching.

Layout under the store root::

    cells/<key>.json        one artifact per computed cell
    checkpoints/<key>.json  mid-cell resume journal (deleted on success)
    locks/<key>.lock        per-key advisory lock files
    manifest.json           last-run bookkeeping (spec + cell statuses)

Checkpoints are append-only JSONL journals of incremental flushes
(:func:`repro.io.results.append_campaign_checkpoint`): each line holds
only the records/waves tail since the previous flush, so long cells
checkpoint in O(1) bytes per step.  :meth:`load_checkpoint` returns the
merged, self-contained resume document; legacy single-document
checkpoint files read as one-line journals.

The key is the cell's parameter content hash
(:func:`repro.campaign.spec.cell_key`), so identical cells — across
re-runs, across campaigns, even across differently-shaped grids —
share one artifact and are never recomputed.

The store is *transactional*: every document is published with an
atomic temp-file + rename (:func:`repro.io.results.atomic_write_text`),
and :meth:`lock` serializes computation per key with an advisory
``flock``, so concurrent campaigns sharing one store never
double-compute a cell or tear each other's artifacts.  A worker killed
at any instant leaves either the previous complete document or none —
never a torn one.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.campaign.spec import CampaignCell
from repro.io.results import (
    atomic_write_text,
    load_campaign_cell,
    load_campaign_checkpoint,
    save_campaign_cell,
    save_campaign_checkpoint,
)

__all__ = ["ResultStore"]


class ResultStore:
    """Content-addressed JSON store for campaign cell results."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.cell_dir = self.root / "cells"
        self.checkpoint_dir = self.root / "checkpoints"
        self.lock_dir = self.root / "locks"
        self.cell_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.cell_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> dict:
        """Load a cell artifact; raises ``FileNotFoundError`` if absent
        and ``ValueError`` on a corrupt/mismatched document."""
        return load_campaign_cell(self.path_for(key))

    def save(self, cell: CampaignCell, result: dict) -> pathlib.Path:
        doc = {
            "key": cell.key,
            "kind": cell.kind,
            "label": cell.label,
            "params": cell.params,
            "result": result,
        }
        return save_campaign_cell(doc, self.path_for(cell.key))

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.cell_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    # -- per-key advisory locks ---------------------------------------
    @contextlib.contextmanager
    def lock(self, key: str, blocking: bool = True):
        """Advisory per-key lock serializing computation of one cell.

        Any number of processes (workers of one campaign, or entirely
        separate campaigns sharing the store) may race for a key; the
        winner computes while the others block, then find the finished
        artifact when they re-probe under the lock.  Yields ``True``
        when the lock was acquired; with ``blocking=False`` yields
        ``False`` immediately if another holder exists.  On platforms
        without ``fcntl`` the lock degrades to a no-op (atomic writes
        still guarantee artifact integrity, only double-compute
        protection is lost).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield True
            return
        self.lock_dir.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_dir / f"{key}.lock", os.O_RDWR | os.O_CREAT)
        try:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(fd, flags)
            except OSError:
                yield False
                return
            yield True
        finally:
            os.close(fd)  # closing the fd releases the flock

    # -- per-cell checkpoints -----------------------------------------
    def checkpoint_path(self, key: str) -> pathlib.Path:
        return self.checkpoint_dir / f"{key}.json"

    def has_checkpoint(self, key: str) -> bool:
        return self.checkpoint_path(key).exists()

    def checkpoint_keys(self) -> list[str]:
        """Keys with a pending checkpoint — the cells some campaign was
        computing when it died."""
        if not self.checkpoint_dir.is_dir():
            return []
        return sorted(p.stem for p in self.checkpoint_dir.glob("*.json"))

    def save_checkpoint(self, cell: CampaignCell, step: int, state: dict) -> pathlib.Path:
        doc = {
            "key": cell.key,
            "kind": cell.kind,
            "params": cell.params,
            "step": int(step),
            "state": state,
        }
        return save_campaign_checkpoint(doc, self.checkpoint_path(cell.key))

    def load_checkpoint(self, key: str) -> dict | None:
        """Load a cell's resume checkpoint (merged across the journal).

        Returns ``None`` when there is nothing (or nothing readable) to
        resume from — no checkpoint, or a syntactically unreadable
        file/torn final journal line, both of which mean "start from
        step 0".  A checkpoint with the *wrong schema version or key*
        (or a journal torn anywhere but its final line) raises
        ``ValueError``: that is a version/integrity problem that must
        fail loudly rather than silently recompute.
        """
        path = self.checkpoint_path(key)
        try:
            doc = load_campaign_checkpoint(path)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            return None  # unreadable -> disposable, recompute from 0
        if doc.get("key") != key:
            raise ValueError(
                f"checkpoint key {doc.get('key')!r} does not match {key!r}"
            )
        return doc

    def clear_checkpoint(self, key: str) -> None:
        with contextlib.suppress(FileNotFoundError):
            self.checkpoint_path(key).unlink()

    # -- manifest -----------------------------------------------------
    def write_manifest(self, doc: dict) -> pathlib.Path:
        """Atomically (re)write the campaign manifest — a kill mid-write
        can never leave torn JSON that poisons the next resume."""
        return atomic_write_text(
            self.root / "manifest.json", json.dumps(doc, indent=1)
        )

    def load_manifest(self) -> dict | None:
        path = self.root / "manifest.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())
