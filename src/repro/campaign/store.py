"""On-disk campaign result store with content-hash caching.

Layout under the store root::

    cells/<key>.json     one artifact per computed cell
    manifest.json        last-run bookkeeping (spec + key list)

The key is the cell's parameter content hash
(:func:`repro.campaign.spec.cell_key`), so identical cells — across
re-runs, across campaigns, even across differently-shaped grids —
share one artifact and are never recomputed.
"""

from __future__ import annotations

import json
import pathlib

from repro.campaign.spec import CampaignCell
from repro.io.results import load_campaign_cell, save_campaign_cell

__all__ = ["ResultStore"]


class ResultStore:
    """Content-addressed JSON store for campaign cell results."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.cell_dir = self.root / "cells"
        self.cell_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        return self.cell_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def load(self, key: str) -> dict:
        """Load a cell artifact; raises ``FileNotFoundError`` if absent
        and ``ValueError`` on a corrupt/mismatched document."""
        return load_campaign_cell(self.path_for(key))

    def save(self, cell: CampaignCell, result: dict) -> pathlib.Path:
        doc = {
            "key": cell.key,
            "kind": cell.kind,
            "label": cell.label,
            "params": cell.params,
            "result": result,
        }
        return save_campaign_cell(doc, self.path_for(cell.key))

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.cell_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def write_manifest(self, doc: dict) -> pathlib.Path:
        path = self.root / "manifest.json"
        path.write_text(json.dumps(doc, indent=1))
        return path
