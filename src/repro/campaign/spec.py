"""Declarative campaign specifications.

A *campaign* is the paper's workload at system scale: a grid of
ground structures x input waves x methods x mesh resolutions, every
cell of which is an independent ensemble run.  :class:`CampaignSpec`
describes the grid declaratively; :meth:`CampaignSpec.cells` expands
it into :class:`CampaignCell` work items with deterministic, content-
derived RNG seeds, so a cell's numerics never depend on how many other
cells share the grid or which worker executes it.

Cells are identified by a content hash of their parameters — the key
of the on-disk :class:`~repro.campaign.store.ResultStore` — which is
what makes re-runs skip already-computed cells.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from dataclasses import asdict, dataclass, field

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_PRECONDITIONER",
    "DEFAULT_PREDICTOR",
    "DEFAULT_SCENARIO",
    "WaveSpec",
    "CampaignCell",
    "CampaignSpec",
    "cell_key",
    "default_waves",
    "method_cell_params",
]

def _heterogeneous() -> tuple[str, ...]:
    """Methods pairing two process sets, hence needing even ensembles
    (lazy: core imports are deferred like the other validators here)."""
    from repro.core.methods import HETEROGENEOUS_METHODS

    return HETEROGENEOUS_METHODS


def _partitionable() -> tuple[str, ...]:
    """Methods supporting nparts > 1 (lazy, see :func:`_heterogeneous`)."""
    from repro.core.methods import PARTITIONABLE_METHODS

    return PARTITIONABLE_METHODS


def _validate_precision(name: str) -> str:
    """Spec-time precision validation (lazy import; the registry's own
    resolver raises loudly on unknown names)."""
    from repro.sparse.precision import as_precision

    return as_precision(name).name


#: The workload scenario pre-axis cells implicitly ran (must mirror
#: :data:`repro.workloads.scenario.DEFAULT_SCENARIO`; kept literal so
#: the spec layer stays import-light).
DEFAULT_SCENARIO = "impulse"


def _validate_scenario(name: str) -> str:
    """Spec-time scenario validation (lazy import; the registry's own
    resolver raises loudly on unknown names)."""
    from repro.workloads.scenario import scenario_by_name

    return scenario_by_name(str(name)).name


#: The execution backend pre-axis cells implicitly ran (must mirror
#: :data:`repro.sparse.backend.DEFAULT_BACKEND`; kept literal so the
#: spec layer stays import-light).
DEFAULT_BACKEND = "numpy"


#: The preconditioner family pre-axis cells implicitly ran (must mirror
#: :data:`repro.sparse.precond.DEFAULT_PRECONDITIONER`; kept literal so
#: the spec layer stays import-light).
DEFAULT_PRECONDITIONER = "bj"


def _validate_precond(name: str) -> str:
    """Spec-time preconditioner validation (lazy import; mirrors the
    other axis validators)."""
    from repro.sparse.precond import PRECONDITIONERS

    name = str(name)
    if name not in PRECONDITIONERS:
        raise ValueError(
            f"unknown preconditioner {name!r}; choose from {PRECONDITIONERS}"
        )
    return name


#: The initial-guess predictor pre-axis cells implicitly ran: the
#: ``"auto"`` sentinel resolving to each method's paper-native pairing
#: (must mirror :data:`repro.predictor.registry.DEFAULT_PREDICTOR`;
#: kept literal so the spec layer stays import-light).
DEFAULT_PREDICTOR = "auto"


def _validate_predictor(name: str) -> str:
    """Spec-time predictor validation (lazy import; the registry's own
    resolver raises loudly on unknown names)."""
    from repro.predictor.registry import predictor_by_name

    return predictor_by_name(str(name)).name


def _validate_backend(name: str) -> str:
    """Spec-time backend validation: the name must be *registered*, but
    need not be *available* here — a campaign spec is data and may be
    authored on a machine without the accelerated engine installed.
    Availability is enforced at execution time by the cell executor."""
    from repro.sparse.backend import backend_names

    name = str(name)
    if name not in backend_names():
        raise ValueError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        )
    return name


def _canonical(params: dict) -> str:
    """Stable JSON encoding used for hashing and storage."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def cell_key(kind: str, params: dict) -> str:
    """Content hash identifying one campaign cell (store filename)."""
    digest = hashlib.sha256(f"{kind}:{_canonical(params)}".encode())
    return digest.hexdigest()[:24]


def derive_seed(*parts) -> int:
    """Deterministic 32-bit seed from arbitrary labelled parts.

    Content-derived (not index-derived): growing the grid never
    changes the seed — and hence the cached result — of an existing
    cell.
    """
    text = "|".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "little")


@dataclass(frozen=True)
class WaveSpec:
    """One input-wave family: a band-limited random surface impulse.

    ``f0_factor`` scales the Ricker center frequency relative to the
    time step (``f0 = f0_factor / (pi dt)``), so the same wave spec is
    meaningful across resolutions.
    """

    name: str
    amplitude: float = 1e6
    f0_factor: float = 0.3
    cycles_to_onset: float = 1.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "WaveSpec":
        """Build from a dict, rejecting unknown keys loudly — a typoed
        wave parameter must not silently vanish into a default (same
        discipline as :func:`repro.workloads.scenario.wave_params`)."""
        unknown = set(d) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown wave spec keys {sorted(unknown)}; known keys: "
                f"{sorted(cls.__dataclass_fields__)}"
            )
        return cls(**d)


def default_waves(n: int) -> tuple[WaveSpec, ...]:
    """``n`` distinct wave families with staggered amplitude/frequency."""
    if n < 1:
        raise ValueError("need at least one wave")
    return tuple(
        WaveSpec(
            name=f"w{i}",
            amplitude=1e6 * (1.0 + 0.5 * i),
            f0_factor=0.3 * (1.0 + 0.25 * (i % 2)),
        )
        for i in range(n)
    )


def method_cell_params(
    model: str,
    wave: WaveSpec,
    method: str,
    resolution,
    *,
    cases: int,
    steps: int,
    module: str,
    eps: float,
    s_min: int,
    s_max: int,
    seed: int,
    nparts: int = 1,
    precision: str = "fp64",
    scenario: str = DEFAULT_SCENARIO,
    backend: str = DEFAULT_BACKEND,
    precond: str = DEFAULT_PRECONDITIONER,
    predictor: str = DEFAULT_PREDICTOR,
) -> tuple[dict, str]:
    """Canonical ``(params, label)`` of one ``"method"`` campaign cell.

    The single owner of the method-cell schema: grid expansion
    (:meth:`CampaignSpec.cells`) and the scaling/transprecision/
    scenario/predictor studies (:mod:`repro.studies.weakscaling`,
    :mod:`repro.studies.transprecision`,
    :mod:`repro.studies.scenarios`, :mod:`repro.studies.predictors`)
    all build their cells here, so equivalent work always produces the
    same content hash.  ``nparts``, ``precision``, ``scenario``,
    ``backend``, ``precond`` and ``predictor`` enter the params (and
    hence the hash) only at non-default values — the content-addition
    discipline that keeps pre-axis cells cached — and the scenario
    ``seed`` is independent of all six, so sweeps along any axis
    compare identical random draws.
    """
    res = tuple(int(x) for x in resolution)
    res_tag = "x".join(map(str, res))
    params = {
        "model": model,
        "wave": wave.to_dict(),
        "method": method,
        "resolution": list(res),
        "cases": cases,
        "steps": steps,
        "module": module,
        "eps": eps,
        "s_min": s_min,
        "s_max": s_max,
        "seed": derive_seed(seed, model, wave.name, method, res_tag),
    }
    label = f"{model}/{wave.name}/{method}/{res_tag}"
    if scenario != DEFAULT_SCENARIO:
        params["scenario"] = _validate_scenario(scenario)
        label += f"/{scenario}"
    if nparts > 1:
        params["nparts"] = int(nparts)
        label += f"/p{int(nparts)}"
    if precision != "fp64":
        params["precision"] = _validate_precision(str(precision))
        label += f"/{precision}"
    if backend != DEFAULT_BACKEND:
        params["backend"] = _validate_backend(str(backend))
        label += f"/{backend}"
    if precond != DEFAULT_PRECONDITIONER:
        params["precond"] = _validate_precond(str(precond))
        label += f"/{precond}"
    if predictor != DEFAULT_PREDICTOR:
        params["predictor"] = _validate_predictor(str(predictor))
        label += f"/{predictor}"
    return params, label


@dataclass(frozen=True)
class CampaignCell:
    """One executable unit of a campaign.

    ``kind`` selects the registered executor
    (:data:`repro.campaign.runner.CELL_EXECUTORS`); ``params`` must be
    JSON-serializable — it is both the executor input and the content
    that is hashed into the cache key.
    """

    kind: str
    params: dict = field(hash=False)
    label: str = ""

    @property
    def key(self) -> str:
        return cell_key(self.kind, self.params)


@dataclass(frozen=True)
class CampaignSpec:
    """A grid campaign: ground models x waves x methods x resolutions.

    Every combination becomes one :class:`CampaignCell` running
    ``cases`` ensemble members for ``steps`` time steps through
    :func:`repro.core.methods.run_method`.
    """

    name: str
    models: tuple[str, ...]
    waves: tuple[WaveSpec, ...]
    methods: tuple[str, ...]
    resolutions: tuple[tuple[int, int, int], ...] = ((2, 2, 1),)
    cases: int = 2
    steps: int = 8
    module: str = "single-gh200"
    seed: int = 0
    eps: float = 1e-8
    s_min: int = 2
    s_max: int = 8
    #: Distributed-solve axis: partitionable methods (``ebe-mcg@cpu-gpu``)
    #: additionally run at every part count here; other methods ignore
    #: the axis and run once, so a grid can compare the distributed
    #: solve against the baselines in one campaign.  ``nparts == 1``
    #: cells keep their pre-axis content hash, so adding part counts to
    #: an existing campaign never invalidates cached single-part cells.
    nparts: tuple[int, ...] = (1,)
    #: Transprecision axis: every method additionally runs at each
    #: storage precision here (``"fp64"`` / ``"fp32"`` / ``"fp21"``) —
    #: the accuracy-vs-speed scenario dimension.  ``"fp64"`` cells keep
    #: their pre-axis content hash (same discipline as ``nparts``), so
    #: adding precisions to an existing campaign never invalidates
    #: cached full-precision cells.
    precision: tuple[str, ...] = ("fp64",)
    #: Workload axis: every method additionally runs each registered
    #: scenario here (:mod:`repro.workloads.scenario`) — physically
    #: distinct ground-structure x source-process bundles.  The
    #: default ``"impulse"`` scenario keeps its pre-axis content hash
    #: (same discipline as ``nparts``/``precision``), so adding
    #: scenarios to an existing campaign never invalidates cached
    #: random-impulse cells.
    scenarios: tuple[str, ...] = (DEFAULT_SCENARIO,)
    #: Execution-backend axis: every method additionally runs under each
    #: registered array backend here (:mod:`repro.sparse.backend`) —
    #: a *measured*-performance dimension only: numerics are identical
    #: (numpy bit-exact, accelerated backends to rounding) and the
    #: modeled traffic/roofline never depends on the backend.  The
    #: default ``"numpy"`` backend keeps its pre-axis content hash
    #: (same discipline as ``nparts``/``precision``/``scenarios``), so
    #: adding backends to an existing campaign never invalidates cached
    #: reference cells.  Names must be registered at spec time but need
    #: only be importable at execution time.
    backends: tuple[str, ...] = (DEFAULT_BACKEND,)
    #: Preconditioner axis: every method additionally runs under each
    #: family here (:data:`repro.sparse.precond.PRECONDITIONERS`) —
    #: ``"bj"`` is the paper's block-Jacobi, ``"twogrid"`` the
    #: geometric two-grid cycle that trades cheap iterations for far
    #: fewer of them.  The default ``"bj"`` keeps its pre-axis content
    #: hash (same discipline as the other axes), so adding
    #: preconditioners to an existing campaign never invalidates cached
    #: block-Jacobi cells.
    preconditioners: tuple[str, ...] = (DEFAULT_PRECONDITIONER,)
    #: Predictor axis: every method additionally runs under each
    #: initial-guess predictor here — the ``"auto"`` sentinel (each
    #: method's paper-native pairing) or any registered name from
    #: :mod:`repro.predictor.registry` (``constant``, ``linear``,
    #: ``adams-bashforth``, ``data-driven``, ``aitken``, ``iqn-ils``).
    #: The ``"auto"`` default keeps its pre-axis content hash (same
    #: discipline as the other axes), so adding predictors to an
    #: existing campaign never invalidates cached native-predictor
    #: cells.
    predictors: tuple[str, ...] = (DEFAULT_PREDICTOR,)

    def __post_init__(self) -> None:
        from repro.core.methods import METHODS
        from repro.hardware.specs import module_by_name
        from repro.workloads.ground import GROUND_MODELS

        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(
            self,
            "waves",
            tuple(
                w if isinstance(w, WaveSpec) else WaveSpec.from_dict(dict(w))
                for w in self.waves
            ),
        )
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(
            self,
            "resolutions",
            tuple(tuple(int(x) for x in res) for res in self.resolutions),
        )
        if not (self.models and self.waves and self.methods and self.resolutions):
            raise ValueError("campaign grid has an empty axis")
        for m in self.models:
            if m not in GROUND_MODELS:
                raise ValueError(f"unknown ground model {m!r}")
        for m in self.methods:
            if m not in METHODS:
                raise ValueError(f"unknown method {m!r}; choose from {METHODS}")
        for res in self.resolutions:
            if len(res) != 3 or any(x < 1 for x in res):
                raise ValueError(f"bad resolution {res!r}")
        module_by_name(self.module)  # typos fail at spec time, loudly
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.cases < 1:
            raise ValueError("cases must be >= 1")
        if any(m in _heterogeneous() for m in self.methods) and (
            self.cases < 2 or self.cases % 2
        ):
            raise ValueError(
                "heterogeneous methods need an even case count >= 2"
            )
        object.__setattr__(
            self, "nparts", tuple(int(p) for p in self.nparts)
        )
        if not self.nparts:
            raise ValueError("campaign grid has an empty axis")
        if any(p < 1 for p in self.nparts):
            raise ValueError("nparts entries must be >= 1")
        if any(p > 1 for p in self.nparts) and not any(
            m in _partitionable() for m in self.methods
        ):
            raise ValueError(
                "nparts > 1 needs at least one partitionable method "
                f"({', '.join(_partitionable())})"
            )
        object.__setattr__(
            self, "precision", tuple(str(p) for p in self.precision)
        )
        if not self.precision:
            raise ValueError("campaign grid has an empty axis")
        for prec in self.precision:
            _validate_precision(prec)
        if len(set(self.precision)) != len(self.precision):
            raise ValueError("duplicate precision entries")
        object.__setattr__(
            self, "scenarios", tuple(str(s) for s in self.scenarios)
        )
        if not self.scenarios:
            raise ValueError("campaign grid has an empty axis")
        for scen in self.scenarios:
            _validate_scenario(scen)
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ValueError("duplicate scenario entries")
        object.__setattr__(
            self, "backends", tuple(str(b) for b in self.backends)
        )
        if not self.backends:
            raise ValueError("campaign grid has an empty axis")
        for bk in self.backends:
            _validate_backend(bk)
        if len(set(self.backends)) != len(self.backends):
            raise ValueError("duplicate backend entries")
        object.__setattr__(
            self, "preconditioners",
            tuple(str(p) for p in self.preconditioners),
        )
        if not self.preconditioners:
            raise ValueError("campaign grid has an empty axis")
        for pc in self.preconditioners:
            _validate_precond(pc)
        if len(set(self.preconditioners)) != len(self.preconditioners):
            raise ValueError("duplicate preconditioner entries")
        object.__setattr__(
            self, "predictors", tuple(str(p) for p in self.predictors)
        )
        if not self.predictors:
            raise ValueError("campaign grid has an empty axis")
        for pred in self.predictors:
            if pred != DEFAULT_PREDICTOR:
                _validate_predictor(pred)
        if len(set(self.predictors)) != len(self.predictors):
            raise ValueError("duplicate predictor entries")

    def _part_axis(self, method: str) -> tuple[int, ...]:
        """The part counts one method expands over (baselines run once)."""
        return self.nparts if method in _partitionable() else (1,)

    @property
    def n_cells(self) -> int:
        return (
            len(self.models)
            * len(self.waves)
            * len(self.resolutions)
            * len(self.precision)
            * len(self.scenarios)
            * len(self.backends)
            * len(self.preconditioners)
            * len(self.predictors)
            * sum(len(self._part_axis(m)) for m in self.methods)
        )

    def cells(self) -> list[CampaignCell]:
        """Expand the grid in deterministic order."""
        out: list[CampaignCell] = []
        for model, wave, method, res in itertools.product(
            self.models, self.waves, self.methods, self.resolutions
        ):
            for scen in self.scenarios:
                for np_ in self._part_axis(method):
                    for prec in self.precision:
                        for bk in self.backends:
                            for pc in self.preconditioners:
                                for pred in self.predictors:
                                    params, label = method_cell_params(
                                        model, wave, method, res,
                                        cases=self.cases, steps=self.steps,
                                        module=self.module, eps=self.eps,
                                        s_min=self.s_min, s_max=self.s_max,
                                        seed=self.seed, nparts=np_,
                                        precision=prec, scenario=scen,
                                        backend=bk, precond=pc,
                                        predictor=pred,
                                    )
                                    out.append(
                                        CampaignCell(
                                            kind="method", params=params,
                                            label=label,
                                        )
                                    )
        return out

    # -- (de)serialization --------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["waves"] = [w.to_dict() for w in self.waves]
        d["resolutions"] = [list(r) for r in self.resolutions]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        d = dict(d)
        unknown = set(d) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown campaign spec keys {sorted(unknown)}")
        return cls(**d)

    def to_json(self, path) -> pathlib.Path:
        from repro.io.results import atomic_write_text

        return atomic_write_text(
            pathlib.Path(path), json.dumps(self.to_dict(), indent=1)
        )

    @classmethod
    def from_json(cls, path) -> "CampaignSpec":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))
