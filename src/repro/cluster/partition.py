"""Mesh partitioning: recursive coordinate bisection (RCB).

The paper uses METIS; for the structured box meshes of the ground
workloads, RCB on element centroids produces the same compact,
low-surface partitions.  A graph-based refinement via networkx's
Kernighan-Lin is available for small irregular cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import networkx as nx
import numpy as np

from repro.fem.mesh import Tet10Mesh

__all__ = ["partition_elements", "PartitionInfo", "element_adjacency_graph"]


def _rcb(centroids: np.ndarray, ids: np.ndarray, nparts: int, out: np.ndarray,
         next_part: int) -> int:
    """Recursively bisect ``ids`` along the longest axis; assign part
    ids starting at ``next_part``; returns the next free part id."""
    if nparts == 1:
        out[ids] = next_part
        return next_part + 1
    ext = centroids[ids].max(axis=0) - centroids[ids].min(axis=0)
    axis = int(np.argmax(ext))
    order = ids[np.argsort(centroids[ids, axis], kind="stable")]
    n_left_parts = nparts // 2
    split = int(round(len(ids) * n_left_parts / nparts))
    next_part = _rcb(centroids, order[:split], n_left_parts, out, next_part)
    return _rcb(centroids, order[split:], nparts - n_left_parts, out, next_part)


def partition_elements(mesh: Tet10Mesh, nparts: int) -> np.ndarray:
    """(ne,) part id per element by recursive coordinate bisection."""
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > mesh.n_elems:
        raise ValueError("more parts than elements")
    out = np.empty(mesh.n_elems, dtype=np.int64)
    used = _rcb(mesh.element_centroids(), np.arange(mesh.n_elems), nparts, out, 0)
    assert used == nparts
    return out


def element_adjacency_graph(mesh: Tet10Mesh) -> nx.Graph:
    """Element dual graph (edges between face-sharing tets); basis for
    graph partitioning / refinement on irregular meshes."""
    g = nx.Graph()
    g.add_nodes_from(range(mesh.n_elems))
    face_owner: dict[tuple[int, int, int], int] = {}
    corners = mesh.elems[:, :4]
    from repro.fem.mesh import TET_FACES

    for e in range(mesh.n_elems):
        for a, b, c in TET_FACES:
            key = tuple(sorted((int(corners[e, a]), int(corners[e, b]), int(corners[e, c]))))
            other = face_owner.pop(key, None)
            if other is None:
                face_owner[key] = e
            else:
                g.add_edge(other, e)
    return g


@dataclass
class PartitionInfo:
    """Derived partition structure shared by halo planning and stats."""

    mesh: Tet10Mesh
    elem_part: np.ndarray

    @property
    def nparts(self) -> int:
        return int(self.elem_part.max()) + 1

    @cached_property
    def part_elems(self) -> list[np.ndarray]:
        return [np.flatnonzero(self.elem_part == p) for p in range(self.nparts)]

    @cached_property
    def part_nodes(self) -> list[np.ndarray]:
        """Nodes touched by each part's elements (owned + halo)."""
        return [
            np.unique(self.mesh.elems[eids].ravel()) for eids in self.part_elems
        ]

    @cached_property
    def node_multiplicity(self) -> np.ndarray:
        """How many parts touch each node (1 = interior)."""
        mult = np.zeros(self.mesh.n_nodes, dtype=np.int64)
        for nodes in self.part_nodes:
            mult[nodes] += 1
        return mult

    @cached_property
    def shared_nodes(self) -> np.ndarray:
        return np.flatnonzero(self.node_multiplicity >= 2)

    def balance(self) -> float:
        """Max/mean element count ratio (1.0 = perfect)."""
        sizes = np.array([len(e) for e in self.part_elems], dtype=float)
        return float(sizes.max() / sizes.mean())

    def surface_fraction(self) -> float:
        """Shared nodes as a fraction of all nodes (communication
        volume indicator)."""
        return float(self.shared_nodes.size / self.mesh.n_nodes)
