"""Weak-scaling model for the heterogeneous pipeline (paper Fig. 5).

The paper tiles the ground model in x-y with constant per-node size
and measures elapsed time per step from 1 to 1,920 Alps nodes,
reporting 94.3 % efficiency.  Scaling loss has exactly two sources in
their setup (and in this model):

* halo exchange per CG iteration with up to 8 x-y tile neighbours
  (GPUDirect over the 24 GB/s NIC);
* log-depth allreduces for the CG dot products.

Per-tile compute and predictor cost are *measured* from a real
single-tile pipeline run; only message timing is modeled.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.cluster.comm import CommCostModel
from repro.core.results import RunResult
from repro.hardware.specs import ALPS_MODULE, ModuleSpec
from repro.hardware.transfer import TransferModel

__all__ = ["WeakScalingPoint", "weak_scaling_curve", "tile_halo_bytes"]


@dataclass(frozen=True)
class WeakScalingPoint:
    """One point of the Fig. 5 curve."""

    n_nodes: int
    elapsed_per_step: float
    efficiency: float
    comm_per_step: float


def tile_halo_bytes(n_surface_nodes_per_face: int, n_rhs: int = 4) -> float:
    """Bytes one tile sends per halo exchange per face neighbour
    (3 fp64 dofs per shared node, ``n_rhs`` fused case vectors)."""
    return 8.0 * 3 * n_surface_nodes_per_face * n_rhs


def _neighbor_faces(n_nodes: int) -> int:
    """x-y tiling neighbour count: 1 node has 0 neighbours; a row of 2
    has 1; large grids saturate at 4 face neighbours."""
    if n_nodes <= 1:
        return 0
    if n_nodes == 2:
        return 1
    if n_nodes <= 4:
        return 2
    return 4


def weak_scaling_curve(
    tile_result: RunResult,
    node_counts: list[int],
    face_nodes: int,
    module: ModuleSpec = ALPS_MODULE,
    window: tuple[int, int] | None = None,
    n_rhs: int = 4,
    overlap_fraction: float = 0.8,
) -> list[WeakScalingPoint]:
    """Extend a measured single-tile pipeline run to many nodes.

    Parameters
    ----------
    tile_result : a (single-node) heterogeneous run on the per-node
        tile; provides per-step solver time and iteration counts.
    face_nodes : shared nodes on one vertical tile face (from the tile
        mesh: ``len(mesh.nodes_where(x == 0))``).
    node_counts : e.g. ``[1, 2, 4, ..., 1920]``.
    overlap_fraction : fraction of the halo transfer hidden behind the
        interior EBE sweep.  GPUDirect point-to-point exchange runs
        concurrently with compute once boundary contributions are
        ready — the standard overlap the paper's 94.3 % efficiency at
        1,920 nodes implies.  Latency-bound allreduces cannot be
        hidden and are charged in full.
    """
    if not 0 <= overlap_fraction < 1:
        raise ValueError("overlap_fraction must be in [0, 1)")
    comm = CommCostModel(TransferModel.nic(module))
    t_tile = tile_result.elapsed_per_step_per_case(window) * tile_result.n_cases
    iters = tile_result.iterations_per_step(window)

    base = None
    points: list[WeakScalingPoint] = []
    for p in node_counts:
        nbrs = _neighbor_faces(p)
        halo = [tile_halo_bytes(face_nodes, n_rhs)] * nbrs
        t_halo = comm.halo_time(halo) * (1.0 - overlap_fraction)
        t_reduce = 2.0 * comm.allreduce_time(8.0, p)
        # Two solver phases per step (Algorithm 3), each iterating the
        # fused CG; comm applies to every iteration of both.
        t_comm = 2.0 * iters * (t_halo + t_reduce)
        t = t_tile + t_comm
        if base is None:
            base = t
        points.append(
            WeakScalingPoint(
                n_nodes=p,
                elapsed_per_step=t,
                efficiency=base / t,
                comm_per_step=t_comm,
            )
        )
    return points
