"""Multi-node substrate (paper §2.2 last part, Fig. 2, Fig. 5).

The paper partitions the finite element model across compute nodes
(METIS), runs Algorithm 3 per node, and keeps nodal values consistent
with point-to-point GPU-GPU synchronization inside the solver only —
the predictor needs no communication.

Here: recursive coordinate bisection replaces METIS (adequate for the
structured ground meshes), :class:`~repro.cluster.halo.DistributedEBE`
executes the partitioned matrix-vector product with an explicit
halo-sum and verifies against the global operator, and
:mod:`~repro.cluster.weakscaling` models the Fig. 5 weak-scaling curve
from measured per-tile work plus the communication cost model.
"""

from repro.cluster.partition import PartitionInfo, partition_elements
from repro.cluster.halo import DistributedEBE, HaloPlan, build_halo_plan
from repro.cluster.comm import CommCostModel
from repro.cluster.weakscaling import WeakScalingPoint, weak_scaling_curve

__all__ = [
    "PartitionInfo",
    "partition_elements",
    "HaloPlan",
    "build_halo_plan",
    "DistributedEBE",
    "CommCostModel",
    "WeakScalingPoint",
    "weak_scaling_curve",
]
