"""Halo exchange plan and the distributed EBE matrix-vector product.

In the partitioned solver each rank stores the dof values of every
node its elements touch; after the local element sweep, contributions
to *shared* nodes must be summed across the touching ranks — the
paper's "point-to-point synchronization between GPUs ... so that the
nodal values between partitions are consistent".

:class:`DistributedEBE` runs that algorithm literally (per-part local
gather/apply/scatter in local index spaces, then a pairwise halo sum)
and is verified in tests to match the global operator exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.partition import PartitionInfo
from repro.fem.assembly import element_dof_ids
from repro.sparse.ebe import EBEOperator
from repro.util import counters

__all__ = ["HaloPlan", "build_halo_plan", "DistributedEBE"]


@dataclass
class HaloPlan:
    """Which nodes each pair of parts must sum over.

    Attributes
    ----------
    pair_nodes : {(p, q): node ids} with p < q, global node indices
        shared between the two parts.
    part_shared_bytes : per-part bytes sent per exchange (3 dofs,
        fp64, to every neighbour sharing each node).
    """

    nparts: int
    pair_nodes: dict[tuple[int, int], np.ndarray]
    part_shared_bytes: np.ndarray

    def neighbors(self, p: int) -> list[int]:
        out = []
        for a, b in self.pair_nodes:
            if a == p:
                out.append(b)
            elif b == p:
                out.append(a)
        return sorted(out)

    def messages_per_exchange(self, p: int) -> int:
        return len(self.neighbors(p))

    def max_bytes_per_exchange(self) -> float:
        return float(self.part_shared_bytes.max()) if self.nparts > 1 else 0.0


def build_halo_plan(info: PartitionInfo) -> HaloPlan:
    """Derive the pairwise shared-node lists from a partition."""
    nparts = info.nparts
    pair_nodes: dict[tuple[int, int], np.ndarray] = {}
    part_bytes = np.zeros(nparts)
    part_node_sets = [set(map(int, nodes)) for nodes in info.part_nodes]
    for p in range(nparts):
        for q in range(p + 1, nparts):
            common = np.array(
                sorted(part_node_sets[p] & part_node_sets[q]), dtype=np.int64
            )
            if common.size:
                pair_nodes[(p, q)] = common
                nbytes = 8.0 * 3 * common.size
                part_bytes[p] += nbytes
                part_bytes[q] += nbytes
    return HaloPlan(nparts=nparts, pair_nodes=pair_nodes, part_shared_bytes=part_bytes)


@dataclass
class DistributedEBE:
    """Partitioned matrix-free operator with explicit halo summation.

    Built from the same constrained element matrices as the global
    :class:`~repro.sparse.ebe.EBEOperator`; ``matvec`` is exact (the
    halo sum reproduces the global scatter), which the tests assert.
    """

    info: PartitionInfo
    plan: HaloPlan
    local_ops: list[EBEOperator]
    local_to_global: list[np.ndarray]
    comm_bytes_per_matvec: float
    _n_dofs: int

    @classmethod
    def from_elements(
        cls, elem_mats: np.ndarray, info: PartitionInfo
    ) -> "DistributedEBE":
        mesh = info.mesh
        plan = build_halo_plan(info)
        local_ops: list[EBEOperator] = []
        l2g: list[np.ndarray] = []
        for p in range(info.nparts):
            eids = info.part_elems[p]
            nodes = info.part_nodes[p]
            remap = -np.ones(mesh.n_nodes, dtype=np.int64)
            remap[nodes] = np.arange(nodes.size)
            local_elems = remap[mesh.elems[eids]]
            local_ops.append(
                EBEOperator(
                    elem_mats[eids], local_elems, nodes.size, tag="spmv.ebe"
                )
            )
            l2g.append(nodes)
        comm = float(plan.part_shared_bytes.sum())
        return cls(
            info=info,
            plan=plan,
            local_ops=local_ops,
            local_to_global=l2g,
            comm_bytes_per_matvec=comm,
            _n_dofs=mesh.n_dofs,
        )

    @property
    def n(self) -> int:
        return self._n_dofs

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_dofs, self._n_dofs)

    def _local_node_index(self, p: int) -> np.ndarray:
        """global node id -> local node index map of part ``p``."""
        nodes = self.local_to_global[p]
        remap = -np.ones(self.info.mesh.n_nodes, dtype=np.int64)
        remap[nodes] = np.arange(nodes.size)
        return remap

    def halo_exchange(self, local_values: list[np.ndarray]) -> list[np.ndarray]:
        """Point-to-point halo summation over per-part nodal vectors.

        ``local_values[p]`` is part ``p``'s local dof vector (one or
        more RHS columns); the return value adds, for every shared
        node, every touching part's *pre-exchange* contribution — the
        MPI algorithm.  Contributions accumulate in ascending part-id
        order on every part (the standard determinism discipline), so
        afterwards each part's copy of a shared node holds the
        bit-identical global sum — the "consistent nodal values" the
        paper synchronizes for, asserted by
        :mod:`tests.cluster.test_halo`.
        """
        nparts = self.info.nparts
        if len(local_values) != nparts:
            raise ValueError("one local vector per part required")
        originals = [np.array(v, dtype=float, copy=True) for v in local_values]
        exchanged = [v.copy() for v in originals]
        remaps = [self._local_node_index(p) for p in range(nparts)]

        def ldofs(part: int, nodes: np.ndarray) -> np.ndarray:
            return (3 * remaps[part][nodes][:, None]
                    + np.arange(3)[None, :]).ravel()

        for p in range(nparts):
            pair_of = {
                q: self.plan.pair_nodes[(min(p, q), max(p, q))]
                for q in self.plan.neighbors(p)
            }
            if not pair_of:
                continue
            own_shared = np.unique(np.concatenate(list(pair_of.values())))
            exchanged[p][ldofs(p, own_shared)] = 0.0
            for q in sorted([p, *pair_of]):
                nodes = own_shared if q == p else pair_of[q]
                exchanged[p][ldofs(p, nodes)] += originals[q][ldofs(q, nodes)]
        return exchanged

    def matvec_parts(self, x: np.ndarray) -> list[np.ndarray]:
        """Per-part local results of one mat-vec *after* the halo
        exchange (each part's view of the consistent global vector)."""
        x = np.asarray(x, dtype=float)
        locals_ = []
        for op, nodes in zip(self.local_ops, self.local_to_global):
            ldof = (3 * nodes[:, None] + np.arange(3)[None, :]).ravel()
            locals_.append(op.matvec(x[ldof]))
        return self.halo_exchange(locals_)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Global mat-vec via per-part local sweeps + halo sum."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        X = x[:, None] if single else x
        Y = np.zeros_like(X)
        for op, nodes in zip(self.local_ops, self.local_to_global):
            ldof = (3 * nodes[:, None] + np.arange(3)[None, :]).ravel()
            y_local = op.matvec(X[ldof])
            # halo sum: accumulating every part's shared contribution
            # into the global vector is exactly the pairwise exchange
            # result (addition is associative across neighbours).
            Y[ldof] += y_local
        counters.charge("halo.exchange", 0.0, self.comm_bytes_per_matvec * X.shape[1])
        return Y[:, 0] if single else Y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal_blocks(self) -> np.ndarray:
        """Globally-consistent diagonal blocks from the local operators."""
        nb = self.info.mesh.n_nodes
        out = np.zeros((nb, 3, 3))
        for op, nodes in zip(self.local_ops, self.local_to_global):
            out[nodes] += op.diagonal_blocks()
        return out
