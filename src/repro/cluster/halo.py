"""Halo exchange plan and the distributed EBE matrix-vector product.

In the partitioned solver each rank stores the dof values of every
node its elements touch; after the local element sweep, contributions
to *shared* nodes must be summed across the touching ranks — the
paper's "point-to-point synchronization between GPUs ... so that the
nodal values between partitions are consistent".

:class:`DistributedEBE` runs that algorithm literally (per-part local
gather/apply/scatter in local index spaces, then a pairwise halo sum)
and is verified in tests to match the global operator exactly.  The
per-part index arrays of the exchange (send lists, accumulation
targets, ghost-node owner maps) are computed once into an
:class:`_ExchangePlan` — no per-exchange temporaries beyond the
staged send buffers, matching the solver hot-path discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.cluster.partition import PartitionInfo
from repro.sparse.backend import ArrayBackend, as_backend
from repro.sparse.ebe import EBEOperator
from repro.sparse.precision import FP64, Precision, as_precision
from repro.util import counters

__all__ = ["HaloPlan", "build_halo_plan", "DistributedEBE"]


def _node_dofs(nodes: np.ndarray) -> np.ndarray:
    """Flat dof ids (3 per node) of a node index array."""
    return (3 * nodes[:, None] + np.arange(3)[None, :]).ravel()


@dataclass
class HaloPlan:
    """Which nodes each pair of parts must sum over.

    Attributes
    ----------
    pair_nodes : {(p, q): node ids} with p < q, global node indices
        shared between the two parts.
    part_shared_bytes : per-part bytes sent per exchange (3 dofs at
        fp64 words, to every neighbour sharing each node).
        Transprecision callers scale these reference bytes by the
        policy's ``storage_ratio`` — the wire carries storage words.
    """

    nparts: int
    pair_nodes: dict[tuple[int, int], np.ndarray]
    part_shared_bytes: np.ndarray

    def neighbors(self, p: int) -> list[int]:
        out = []
        for a, b in self.pair_nodes:
            if a == p:
                out.append(b)
            elif b == p:
                out.append(a)
        return sorted(out)

    def messages_per_exchange(self, p: int) -> int:
        return len(self.neighbors(p))

    def max_bytes_per_exchange(self) -> float:
        return float(self.part_shared_bytes.max()) if self.nparts > 1 else 0.0


def build_halo_plan(info: PartitionInfo) -> HaloPlan:
    """Derive the pairwise shared-node lists from a partition."""
    nparts = info.nparts
    pair_nodes: dict[tuple[int, int], np.ndarray] = {}
    part_bytes = np.zeros(nparts)
    part_node_sets = [set(map(int, nodes)) for nodes in info.part_nodes]
    for p in range(nparts):
        for q in range(p + 1, nparts):
            common = np.array(
                sorted(part_node_sets[p] & part_node_sets[q]), dtype=np.int64
            )
            if common.size:
                pair_nodes[(p, q)] = common
                nbytes = 8.0 * 3 * common.size
                part_bytes[p] += nbytes
                part_bytes[q] += nbytes
    return HaloPlan(nparts=nparts, pair_nodes=pair_nodes, part_shared_bytes=part_bytes)


class _ExchangePlan:
    """Precomputed index arrays for the pairwise halo summation.

    Per part ``p``:

    * ``shared_ldofs[p]`` — local dof ids of every node ``p`` shares
      with any neighbour (the part's send/receive surface);
    * ``adds[p]`` — ``(q, dest, src)`` triples in ascending source-part
      order (``p`` included): accumulate rows ``src`` of part ``q``'s
      staged surface values into local dofs ``dest`` of part ``p``.

    The staged surface buffers are the literal MPI send buffers; the
    ascending-``q`` accumulation order is the determinism discipline
    that makes every part's copy of a shared node bit-identical.
    """

    def __init__(self, plan: HaloPlan, local_node_index: list[np.ndarray]) -> None:
        nparts = plan.nparts

        def ldofs(part: int, nodes: np.ndarray) -> np.ndarray:
            return _node_dofs(local_node_index[part][nodes])

        self.shared_nodes: list[np.ndarray] = []
        self.shared_ldofs: list[np.ndarray] = []
        for p in range(nparts):
            pairs = [plan.pair_nodes[(min(p, q), max(p, q))]
                     for q in plan.neighbors(p)]
            own = (np.unique(np.concatenate(pairs)) if pairs
                   else np.empty(0, dtype=np.int64))
            self.shared_nodes.append(own)
            self.shared_ldofs.append(ldofs(p, own))

        def stage_rows(part: int, nodes: np.ndarray) -> np.ndarray:
            """Row indices of ``nodes`` within part's staged surface."""
            return _node_dofs(np.searchsorted(self.shared_nodes[part], nodes))

        self.adds: list[list[tuple[int, np.ndarray, np.ndarray]]] = []
        for p in range(nparts):
            triples: list[tuple[int, np.ndarray, np.ndarray]] = []
            neighbors = plan.neighbors(p)
            if neighbors:
                pair_of = {
                    q: plan.pair_nodes[(min(p, q), max(p, q))] for q in neighbors
                }
                for q in sorted([p, *neighbors]):
                    nodes = self.shared_nodes[p] if q == p else pair_of[q]
                    triples.append((q, ldofs(p, nodes), stage_rows(q, nodes)))
            self.adds.append(triples)


@dataclass
class DistributedEBE:
    """Partitioned matrix-free operator with explicit halo summation.

    Built from the same constrained element matrices as the global
    :class:`~repro.sparse.ebe.EBEOperator`; ``matvec`` is exact (the
    halo sum reproduces the global scatter), which the tests assert.
    """

    info: PartitionInfo
    plan: HaloPlan
    local_ops: list[EBEOperator]
    local_to_global: list[np.ndarray]
    comm_bytes_per_matvec: float
    _n_dofs: int
    precision: Precision = FP64
    backend: ArrayBackend | None = None
    _xplan: _ExchangePlan | None = field(default=None, repr=False)

    @classmethod
    def from_elements(
        cls,
        elem_mats: np.ndarray,
        info: PartitionInfo,
        precision: Precision | str | None = None,
        backend: "ArrayBackend | str | None" = None,
    ) -> "DistributedEBE":
        """Partition the constrained element matrices over ``info``.

        ``precision`` is the transprecision storage policy: the local
        EBE operators store/gather at the format, and the halo wire
        moves storage-precision words, so ``comm_bytes_per_matvec``
        (and every ``halo.exchange`` charge) shrinks with the itemsize.

        ``backend`` is the execution engine the local EBE sweeps (and a
        ``distributed_pcg`` run on this operator, by default) use; the
        halo staging itself stays host NumPy — it models the MPI wire,
        not a device kernel — so exchange arithmetic is bit-identical
        across backends.
        """
        prec = as_precision(precision)
        bk = as_backend(backend)
        mesh = info.mesh
        plan = build_halo_plan(info)
        local_ops: list[EBEOperator] = []
        l2g: list[np.ndarray] = []
        for p in range(info.nparts):
            eids = info.part_elems[p]
            nodes = info.part_nodes[p]
            remap = -np.ones(mesh.n_nodes, dtype=np.int64)
            remap[nodes] = np.arange(nodes.size)
            local_elems = remap[mesh.elems[eids]]
            local_ops.append(
                EBEOperator(
                    elem_mats[eids], local_elems, nodes.size, tag="spmv.ebe",
                    precision=prec, backend=bk,
                )
            )
            l2g.append(nodes)
        comm = float(plan.part_shared_bytes.sum()) * prec.storage_ratio
        return cls(
            info=info,
            plan=plan,
            local_ops=local_ops,
            local_to_global=l2g,
            comm_bytes_per_matvec=comm,
            _n_dofs=mesh.n_dofs,
            precision=prec,
            backend=bk,
        )

    @property
    def n(self) -> int:
        return self._n_dofs

    @property
    def nparts(self) -> int:
        return self.info.nparts

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_dofs, self._n_dofs)

    @cached_property
    def _node_index(self) -> list[np.ndarray]:
        """Per-part global-node-id -> local-node-index maps, built once."""
        out = []
        for nodes in self.local_to_global:
            remap = -np.ones(self.info.mesh.n_nodes, dtype=np.int64)
            remap[nodes] = np.arange(nodes.size)
            out.append(remap)
        return out

    def _local_node_index(self, p: int) -> np.ndarray:
        """global node id -> local node index map of part ``p``."""
        return self._node_index[p]

    @cached_property
    def local_global_dofs(self) -> list[np.ndarray]:
        """Per-part global dof ids of the local vector entries (the
        restriction map ``x_local = x[local_global_dofs[p]]``)."""
        return [_node_dofs(nodes) for nodes in self.local_to_global]

    @cached_property
    def node_owner(self) -> np.ndarray:
        """Owning part per node (lowest touching part id — the
        canonical MPI convention so each node is reduced exactly once)."""
        owner = np.full(self.info.mesh.n_nodes, -1, dtype=np.int64)
        for p in reversed(range(self.nparts)):
            owner[self.local_to_global[p]] = p
        return owner

    @cached_property
    def owned_local_dofs(self) -> list[np.ndarray]:
        """Per-part local dof indices of the nodes the part owns."""
        out = []
        for p, nodes in enumerate(self.local_to_global):
            mine = np.flatnonzero(self.node_owner[nodes] == p)
            out.append(_node_dofs(mine))
        return out

    @cached_property
    def owned_global_dofs(self) -> list[np.ndarray]:
        """Per-part global dof ids of owned nodes, in local order.

        The concatenation over parts is a permutation of all dofs: the
        index sets of the canonical partitioned reductions.
        """
        return [
            g[ldofs]
            for g, ldofs in zip(self.local_global_dofs, self.owned_local_dofs)
        ]

    @property
    def exchange_plan(self) -> _ExchangePlan:
        """The cached halo-exchange index plan (built on first use)."""
        if self._xplan is None:
            self._xplan = _ExchangePlan(self.plan, self._node_index)
        return self._xplan

    def halo_exchange(
        self,
        local_values: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Point-to-point halo summation over per-part nodal vectors.

        ``local_values[p]`` is part ``p``'s local dof vector (``(ld,)``
        or ``(ld, r)`` for fused multi-RHS columns); the return value
        adds, for every shared node, every touching part's
        *pre-exchange* contribution — the MPI algorithm.  Contributions
        accumulate in ascending part-id order on every part (the
        standard determinism discipline), so afterwards each part's
        copy of a shared node holds the bit-identical global sum — the
        "consistent nodal values" the paper synchronizes for, asserted
        by :mod:`tests.cluster.test_halo`.

        ``out`` receives the exchanged vectors without allocating
        (aliasing the inputs is fine: pre-exchange surface values are
        staged first, exactly like MPI send buffers).  The wire traffic
        is charged to the ``halo.exchange`` counter — one exchange's
        bytes per column — so `matvec_parts` callers (the literal MPI
        path) account communication identically to :meth:`matvec`.
        """
        nparts = self.nparts
        if len(local_values) != nparts:
            raise ValueError("one local vector per part required")
        xp = self.exchange_plan
        ncols = 1 if local_values[0].ndim == 1 else int(local_values[0].shape[1])
        # stage every part's pre-exchange surface values (send buffers)
        stages = [
            np.asarray(v, dtype=float)[xp.shared_ldofs[p]]
            for p, v in enumerate(local_values)
        ]
        if out is None:
            exchanged = [np.array(v, dtype=float, copy=True) for v in local_values]
        else:
            exchanged = out
            for dst, src in zip(exchanged, local_values):
                np.copyto(dst, src)
        for p in range(nparts):
            if not xp.adds[p]:
                continue
            exchanged[p][xp.shared_ldofs[p]] = 0.0
            for _q, dest, src in xp.adds[p]:
                exchanged[p][dest] += stages[_q][src]
        counters.charge(
            "halo.exchange", 0.0, self.comm_bytes_per_matvec * ncols
        )
        return exchanged

    def matvec_parts(self, x: np.ndarray) -> list[np.ndarray]:
        """Per-part local results of one mat-vec *after* the halo
        exchange (each part's view of the consistent global vector)."""
        x = np.asarray(x, dtype=float)
        locals_ = [
            op.matvec(x[ldof])
            for op, ldof in zip(self.local_ops, self.local_global_dofs)
        ]
        return self.halo_exchange(locals_)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Global mat-vec via per-part local sweeps + halo sum."""
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        X = x[:, None] if single else x
        Y = np.zeros_like(X)
        for op, ldof in zip(self.local_ops, self.local_global_dofs):
            y_local = op.matvec(X[ldof])
            # halo sum: accumulating every part's shared contribution
            # into the global vector is exactly the pairwise exchange
            # result (addition is associative across neighbours).
            Y[ldof] += y_local
        counters.charge("halo.exchange", 0.0, self.comm_bytes_per_matvec * X.shape[1])
        return Y[:, 0] if single else Y

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal_blocks(self) -> np.ndarray:
        """Globally-consistent diagonal blocks from the local operators."""
        nb = self.info.mesh.n_nodes
        out = np.zeros((nb, 3, 3))
        for op, nodes in zip(self.local_ops, self.local_to_global):
            out[nodes] += op.diagonal_blocks()
        return out
