"""Communication cost model for the partitioned solver.

Three message patterns matter per CG iteration (paper Fig. 2):

* halo exchange after the EBE sweep — pairwise, overlappable messages
  to face neighbours (GPUDirect, no CPU involvement);
* two allreduces for the CG dot products — tree reductions,
  ``ceil(log2 P)`` latency-bound rounds;
* nothing for the predictor ("the parallel performance is not degraded
  by inter-node communication").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.transfer import TransferModel

__all__ = ["CommCostModel"]


@dataclass(frozen=True)
class CommCostModel:
    """Cost calculator for one rank's per-iteration communication."""

    link: TransferModel

    def halo_time(self, bytes_per_neighbor: list[float]) -> float:
        """Pairwise halo exchange: neighbours are contacted
        concurrently over the NIC, so the cost is one latency plus the
        serialized bandwidth of this rank's total halo volume."""
        if not bytes_per_neighbor:
            return 0.0
        total = float(sum(bytes_per_neighbor))
        return self.link.latency + total / self.link.bandwidth

    def allreduce_time(self, nbytes: float, nparts: int) -> float:
        """Tree allreduce of a small message (CG scalars)."""
        if nparts <= 1:
            return 0.0
        rounds = math.ceil(math.log2(nparts))
        return rounds * self.link.time(nbytes)

    def cg_iteration_overhead(
        self, halo_bytes_per_neighbor: list[float], nparts: int, n_scalars: int = 1
    ) -> float:
        """Extra seconds per CG iteration due to communication: one halo
        exchange (SpMV) + two scalar allreduces (rho, p.q)."""
        return self.halo_time(halo_bytes_per_neighbor) + 2.0 * self.allreduce_time(
            8.0 * n_scalars, nparts
        )
