"""Ready-made workloads: the paper's three ground-structure models."""

from repro.workloads.ground import (
    GROUND_MODELS,
    GroundModel,
    basin_model,
    build_ground_problem,
    slanted_model,
    stratified_model,
    suggested_dt,
)

__all__ = [
    "GroundModel",
    "GROUND_MODELS",
    "stratified_model",
    "basin_model",
    "slanted_model",
    "build_ground_problem",
    "suggested_dt",
]
