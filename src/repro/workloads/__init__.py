"""Ready-made workloads: the paper's ground models + the scenario
registry (pluggable ground structure x source process bundles).

Importing this package registers every built-in scenario; external
code adds its own with :func:`register_scenario`.
"""

from repro.workloads.ground import (
    GROUND_MODELS,
    GroundModel,
    basin_model,
    build_ground_problem,
    slanted_model,
    stratified_model,
    suggested_dt,
)
from repro.workloads.scenario import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    ImpulseScenario,
    Scenario,
    register_scenario,
    scenario_by_name,
    scenario_names,
    wave_params,
)
from repro.workloads.sources import (
    CallableSource,
    ChainedSource,
    QuiescentSource,
    as_source,
    is_source,
    source_active,
)
from repro.workloads.library import (  # noqa: F401 - registers the library
    AftershockScenario,
    AftershockSequence,
    ChainScenario,
    FaultRuptureScenario,
    KinematicRuptureForce,
    LayeredBasinModel,
    LayeredBasinScenario,
    LongRecordScenario,
    SoftSoilScenario,
    layered_basin_model,
    soft_soil_model,
)

__all__ = [
    "GroundModel",
    "GROUND_MODELS",
    "stratified_model",
    "basin_model",
    "slanted_model",
    "build_ground_problem",
    "suggested_dt",
    "DEFAULT_SCENARIO",
    "SCENARIOS",
    "Scenario",
    "ImpulseScenario",
    "register_scenario",
    "scenario_by_name",
    "scenario_names",
    "wave_params",
    "LayeredBasinModel",
    "LayeredBasinScenario",
    "FaultRuptureScenario",
    "SoftSoilScenario",
    "AftershockScenario",
    "ChainScenario",
    "LongRecordScenario",
    "KinematicRuptureForce",
    "AftershockSequence",
    "layered_basin_model",
    "soft_soil_model",
    "CallableSource",
    "ChainedSource",
    "QuiescentSource",
    "as_source",
    "is_source",
    "source_active",
]
