"""Pluggable scenario registry: *what* the solver stack is asked to solve.

A :class:`Scenario` bundles the two ingredients of a workload —

* the **ground structure** (which :class:`~repro.workloads.ground.GroundModel`
  variant to mesh, possibly rebuilt with scenario-specific materials), and
* the **source process** (one forcing callable ``f(it) -> (n_dofs,)``
  per ensemble case, drawn from a deterministic per-case RNG stream)

— behind one registered name, so every layer above (``run_method``,
the campaign grid, the CLI, the studies) can sweep physically distinct
workloads the same way it sweeps methods, part counts and storage
precisions.

Registration mirrors the other strict registries
(:func:`repro.hardware.specs.module_by_name`,
:data:`repro.sparse.precision.PRECISIONS`): a scenario class is
registered under its ``name`` with :func:`register_scenario`, and
:func:`scenario_by_name` resolves names loudly — a typo'd scenario
must fail at spec time, never silently run the default physics.

The default :class:`ImpulseScenario` reproduces the pre-registry
behaviour bit-for-bit (same RNG spawning, same band-limited impulse
construction), which is what lets the campaign's ``scenario`` axis
keep pre-axis cell hashes and cached artifacts valid.
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar

import numpy as np

from repro.analysis.waves import BandlimitedImpulse
from repro.core.problem import ElasticProblem
from repro.util.rng import spawn_rngs
from repro.workloads.ground import GROUND_MODELS, GroundModel, build_ground_problem

__all__ = [
    "DEFAULT_SCENARIO",
    "SCENARIOS",
    "Scenario",
    "ImpulseScenario",
    "register_scenario",
    "scenario_by_name",
    "scenario_names",
    "wave_params",
]

#: name -> registered Scenario subclass (the class, not an instance:
#: scenarios are stateless and cheap to instantiate per use).
SCENARIOS: dict[str, type["Scenario"]] = {}

#: The scenario every pre-registry run implicitly was.  Cells, CLI
#: invocations and studies that do not name a scenario get this one,
#: and campaign cells running it keep their pre-axis content hash.
DEFAULT_SCENARIO = "impulse"


def register_scenario(cls: type["Scenario"]) -> type["Scenario"]:
    """Class decorator adding a :class:`Scenario` to the registry.

    The class's ``name`` is the registry key; re-registering a name
    with a *different* class is an error (re-importing the same class
    is idempotent, so test reloads stay safe).
    """
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"scenario class {cls.__name__} has no name")
    existing = SCENARIOS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"scenario name {name!r} already registered by {existing.__name__}"
        )
    SCENARIOS[name] = cls
    return cls


def scenario_by_name(name: str) -> type["Scenario"]:
    """Resolve a registered scenario class by name; a typo must fail
    loudly rather than silently run the default physics (the same
    discipline as :func:`repro.hardware.specs.module_by_name`)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, default first then alphabetical —
    the deterministic order sweeps and tables present them in."""
    rest = sorted(n for n in SCENARIOS if n != DEFAULT_SCENARIO)
    return ((DEFAULT_SCENARIO,) if DEFAULT_SCENARIO in SCENARIOS else ()) + tuple(rest)


#: Wave-description keys scenarios understand.  ``name`` is the wave
#: family's label (carried by campaign ``WaveSpec``s), the rest are
#: physics.  Anything else is rejected loudly — a typo'd ``amplitudee``
#: must not silently run default physics.
WAVE_KEYS = frozenset({"name", "amplitude", "f0_factor", "cycles_to_onset"})


def wave_params(wave) -> dict:
    """Normalize a wave description (a campaign ``WaveSpec`` or its
    params dict) to the plain dict scenarios consume — keeps this
    module free of a campaign-layer import.  Unknown keys raise,
    matching the registry discipline everywhere else."""
    if hasattr(wave, "to_dict"):
        wave = wave.to_dict()
    unknown = set(wave) - WAVE_KEYS
    if unknown:
        raise ValueError(
            f"unknown wave parameter(s) {sorted(unknown)}; "
            f"known keys: {sorted(WAVE_KEYS)}"
        )
    return {
        "amplitude": float(wave.get("amplitude", 1e6)),
        "f0_factor": float(wave.get("f0_factor", 0.3)),
        "cycles_to_onset": float(wave.get("cycles_to_onset", 1.0)),
    }


class Scenario(abc.ABC):
    """One registered workload: ground structure + source process.

    Subclasses override :meth:`ground_model` to rebuild or replace the
    named paper model (materials, extra layers) and :meth:`case_force`
    to define one ensemble case's forcing.  Everything is a pure
    function of ``(model, resolution, wave, rng)`` — no hidden state —
    so a scenario is deterministic under a fixed seed, which the golden
    regression fixtures and the campaign content hashes both rely on.
    """

    #: registry key (also the campaign cell's ``scenario`` param).
    name: ClassVar[str] = ""
    #: one-line physical rationale, shown by ``repro scenarios``.
    description: ClassVar[str] = ""

    # -- ground structure ---------------------------------------------
    def ground_model(self, model: str) -> GroundModel:
        """The ground structure this scenario runs on.

        The default keeps the named paper model untouched; scenarios
        with their own stratigraphy derive from it (so the ``model``
        axis still selects the surrounding structure).
        """
        if model not in GROUND_MODELS:
            raise ValueError(
                f"unknown ground model {model!r}; choose from {sorted(GROUND_MODELS)}"
            )
        return GROUND_MODELS[model]()

    def build_problem(
        self,
        model: str,
        resolution: tuple[int, int, int],
        dt: float | None = None,
    ) -> ElasticProblem:
        """Mesh + assemble the scenario's problem (same discretization
        conventions as :func:`~repro.workloads.ground.build_ground_problem`)."""
        return build_ground_problem(
            self.ground_model(model), resolution=tuple(resolution), dt=dt
        )

    # -- source process -----------------------------------------------
    @abc.abstractmethod
    def case_force(
        self,
        problem: ElasticProblem,
        wave: dict,
        rng: np.random.Generator,
    ) -> Callable[[int], np.ndarray]:
        """One ensemble case's forcing ``f(it) -> (n_dofs,)``."""

    def forces(
        self,
        problem: ElasticProblem,
        wave,
        seed: int,
        n_cases: int,
    ) -> list[Callable[[int], np.ndarray]]:
        """``n_cases`` independent forcings from one content-derived
        seed — the same :func:`~repro.util.rng.spawn_rngs` streams the
        campaign executor always used, so case ``i`` is identical
        regardless of ensemble size or worker placement."""
        w = wave_params(wave)
        return [
            self.case_force(problem, w, rng) for rng in spawn_rngs(seed, n_cases)
        ]


@register_scenario
class ImpulseScenario(Scenario):
    """The paper's random-input workload (§3.1), unchanged.

    A band-limited random surface impulse per case: random surface
    nodes pushed in random directions with a Ricker source-time
    function whose center frequency tracks the time step
    (``f0 = f0_factor / (pi dt)``).  This is the pre-registry default
    path bit-for-bit — its campaign cells hash to the pre-axis keys.
    """

    name = "impulse"
    description = (
        "band-limited random surface impulse, free vibration after onset "
        "(the paper's random-input ensemble)"
    )

    def case_force(self, problem, wave, rng):
        return BandlimitedImpulse.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"],
            f0=wave["f0_factor"] / (np.pi * problem.dt),
            cycles_to_onset=wave["cycles_to_onset"],
        )
