"""The paper's three candidate 3D ground structures (Fig. 1).

All models share a flat surface and box dimensions (the paper:
950 x 950 x 120 m) but differ in the interface between the soft
sedimentary layer and the hard bedrock:

a. horizontally stratified — flat interface;
b. circular basin — a bowl-shaped depression of bedrock;
c. slanted bedrock — a planar, tilted interface.

Materials follow typical sediment/bedrock contrasts.  Mesh resolution
is a free parameter so the same workloads serve fast tests (hundreds
of elements) and benches (tens of thousands); the paper's full 11.4M
element model is the ``resolution -> infinity`` limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.problem import ElasticProblem, build_problem
from repro.fem.material import Material
from repro.fem.mesh import Tet10Mesh, structured_box

__all__ = [
    "GroundModel",
    "GROUND_MODELS",
    "stratified_model",
    "basin_model",
    "slanted_model",
    "build_ground_problem",
    "suggested_dt",
]

#: Soft sedimentary layer (paper-typical contrast vs bedrock).
SEDIMENT = Material(rho=1800.0, vp=700.0, vs=200.0, damping=0.02)
#: Hard bedrock.
BEDROCK = Material(rho=2400.0, vp=2100.0, vs=1000.0, damping=0.01)

#: Paper domain dimensions [m].
DOMAIN = (950.0, 950.0, 120.0)


@dataclass(frozen=True)
class GroundModel:
    """One candidate ground structure.

    ``interface(x, y)`` returns the elevation (z, measured from the
    bottom of the box) of the sediment/bedrock interface; material is
    sediment above, bedrock below.
    """

    name: str
    interface: Callable[[np.ndarray, np.ndarray], np.ndarray]
    soft: Material = SEDIMENT
    hard: Material = BEDROCK
    dims: tuple[float, float, float] = DOMAIN

    def element_materials(
        self, mesh: Tet10Mesh
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rho, vp, vs) per element, assigned by centroid position."""
        c = mesh.element_centroids()
        z_int = self.interface(c[:, 0], c[:, 1])
        soft = c[:, 2] >= z_int
        rho = np.where(soft, self.soft.rho, self.hard.rho)
        vp = np.where(soft, self.soft.vp, self.hard.vp)
        vs = np.where(soft, self.soft.vs, self.hard.vs)
        return rho, vp, vs


def stratified_model(layer_depth: float = 60.0) -> GroundModel:
    """(a) horizontally stratified: flat interface ``layer_depth`` below
    the surface."""
    lz = DOMAIN[2]
    z0 = lz - layer_depth

    def interface(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(x, dtype=float), z0)

    return GroundModel(name="stratified", interface=interface)


def basin_model(
    edge_depth: float = 30.0, center_depth: float = 90.0, radius_frac: float = 0.38
) -> GroundModel:
    """(b) circular basin: bowl-shaped bedrock depression centered in
    the domain, ``center_depth`` deep at the middle, ``edge_depth``
    outside the basin."""
    lx, ly, lz = DOMAIN
    R = radius_frac * min(lx, ly)

    def interface(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r2 = (np.asarray(x) - lx / 2) ** 2 + (np.asarray(y) - ly / 2) ** 2
        bowl = np.clip(1.0 - r2 / R**2, 0.0, None)
        depth = edge_depth + (center_depth - edge_depth) * bowl
        return lz - depth

    return GroundModel(name="basin", interface=interface)


def slanted_model(min_depth: float = 20.0, max_depth: float = 100.0) -> GroundModel:
    """(c) slanted bedrock: interface depth grows linearly across x."""
    lx, _ly, lz = DOMAIN

    def interface(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.clip(np.asarray(x, dtype=float) / lx, 0.0, 1.0)
        depth = min_depth + (max_depth - min_depth) * t
        return lz - depth

    return GroundModel(name="slanted", interface=interface)


GROUND_MODELS: dict[str, Callable[[], GroundModel]] = {
    "stratified": stratified_model,
    "basin": basin_model,
    "slanted": slanted_model,
}


def suggested_dt(mesh: Tet10Mesh, vp_max: float, courant: float = 2.0) -> float:
    """Time step preserving the paper's stiffness/mass balance.

    The implicit Newmark scheme is unconditionally stable, so ``dt``
    is an accuracy/conditioning knob: the paper's 2.5 m elements with
    dt = 0.005 s put ``vp dt / h`` around 2-3, which is what makes the
    effective matrix stiffness-influenced enough to need ~150 CG
    iterations.  Scaled-down meshes keep the same dimensionless group.
    """
    # smallest corner-node grid spacing along the axes
    diffs = []
    for ax in range(3):
        u = np.unique(np.round(mesh.nodes[: mesh.n_corner_nodes, ax], 9))
        if u.size > 1:
            diffs.append(np.diff(u).min())
    h_min = min(diffs)
    return float(courant * h_min / vp_max)


def build_ground_problem(
    model: GroundModel,
    resolution: tuple[int, int, int] = (8, 8, 4),
    dt: float | None = None,
    courant: float = 2.0,
    dims: tuple[float, float, float] | None = None,
) -> ElasticProblem:
    """Mesh one ground model and assemble its :class:`ElasticProblem`.

    Parameters
    ----------
    resolution : hexahedral cells per direction (x6 tets each).
    dt : explicit time step; default from :func:`suggested_dt`.
    dims : override the physical box (e.g. the doubled Alps domain).
    """
    lx, ly, lz = dims if dims is not None else model.dims
    nx, ny, nz = resolution
    mesh = structured_box(nx, ny, nz, lx, ly, lz)
    rho, vp, vs = model.element_materials(mesh)
    if dt is None:
        dt = suggested_dt(mesh, float(vp.max()), courant)
    return build_problem(
        mesh,
        rho,
        vp,
        vs,
        dt=dt,
        damping_ratio=0.02,
        damping_band=(0.25, 5.0),
        absorbing_sides=True,
        fix_bottom=True,
    )
