"""Streaming source engine: the ``SourceStream`` protocol.

Long (endurance) runs spend almost all of their steps in source
silence — a mainshock rings down, aftershocks arrive and decay, and
the remaining hours of record are free vibration.  The legacy forcing
interface ``f(it) -> (n_dofs,)`` makes every one of those silent steps
cost a fresh ``(n_dofs,)`` allocation and a full evaluation.  A
*source stream* declares what the callable interface cannot:

``evaluate(it, out)``
    write step ``it``'s forcing into a caller-owned buffer (no
    allocation on the hot path) and return it.  Outside the active
    window this is a memset.
``window()``
    the half-open step interval ``(start, stop)`` outside which the
    source is *exactly* zero in fp64 (``None`` = always potentially
    active).  The built-in Ricker-driven sources derive their windows
    from the guaranteed ``exp`` underflow of the wavelet (see
    :func:`repro.analysis.waves.ricker_support_steps`), so windowing
    is bit-invisible: inside the window the stream computes the same
    arithmetic the legacy callable did, outside it the legacy values
    underflowed to (signed) zero anyway.
``state_dict()`` / ``load_state_dict()``
    JSON-able state for checkpoints.  The built-in sources are pure
    functions of step index and return ``{}``; stateful sources (e.g.
    streaming sensor feeds) persist whatever they need.

Plain callables keep working everywhere a stream is expected:
:func:`as_source` wraps them in :class:`CallableSource`, which simply
copies ``f(it)`` into the buffer and declares no window.

:class:`ChainedSource` composes streams end to end (mainshock →
aftershock sequence → quiescence): each part runs on its own local
step clock, offset by the cumulative window length of its
predecessors.  Parts therefore never overlap, which is what makes the
composition exactly associative (asserted by the property tests).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "CallableSource",
    "ChainedSource",
    "QuiescentSource",
    "as_source",
    "is_source",
    "source_active",
]


def is_source(f) -> bool:
    """Does ``f`` implement the ``SourceStream`` protocol?"""
    return callable(getattr(f, "evaluate", None)) and callable(
        getattr(f, "window", None)
    )


def as_source(f):
    """Return ``f`` if it already is a source stream, else wrap the
    plain callable in a :class:`CallableSource` adapter."""
    if is_source(f):
        return f
    if not callable(f):
        raise TypeError(f"not a forcing callable: {f!r}")
    return CallableSource(f)


def source_active(src, it: int) -> bool:
    """Whether a stream can be nonzero at step ``it``."""
    w = src.window()
    return w is None or w[0] <= it < w[1]


class CallableSource:
    """Back-compat adapter: any ``f(it) -> (n_dofs,)`` callable as a
    source stream.  No window is declared (the callable's silence
    structure is unknown), so every step evaluates ``f`` and copies
    the result into the caller's buffer."""

    def __init__(self, fn: Callable[[int], np.ndarray]) -> None:
        self.fn = fn

    def __call__(self, it: int) -> np.ndarray:
        return self.fn(it)

    def evaluate(self, it: int, out: np.ndarray) -> np.ndarray:
        np.copyto(out, self.fn(it))
        return out

    def window(self) -> tuple[int, int] | None:
        return None

    def state_dict(self) -> dict:
        sd = getattr(self.fn, "state_dict", None)
        return sd() if callable(sd) else {}

    def load_state_dict(self, doc: dict) -> None:
        ld = getattr(self.fn, "load_state_dict", None)
        if callable(ld):
            ld(doc)
        elif doc:
            raise ValueError(
                "state for a stateless callable source"
            )


class QuiescentSource:
    """``duration`` steps of exact silence.

    Its window is the *empty* interval ``(duration, duration)`` — it
    is never active, but it occupies ``duration`` steps of a
    :class:`ChainedSource`'s clock, which is how a chain expresses
    "then nothing happens for a while" (or "then the record ends")."""

    def __init__(self, n_dofs: int, duration: int) -> None:
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self.n_dofs = int(n_dofs)
        self.duration = int(duration)

    def __call__(self, it: int) -> np.ndarray:
        return np.zeros(self.n_dofs)

    def evaluate(self, it: int, out: np.ndarray) -> np.ndarray:
        out[:] = 0.0
        return out

    def window(self) -> tuple[int, int]:
        return (self.duration, self.duration)

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, doc: dict) -> None:
        pass


class ChainedSource:
    """Sources composed end to end on one step clock.

    Part ``i`` starts when the declared window of part ``i - 1`` ends:
    its local step clock is the global one minus the cumulative offset,
    so a part behaves exactly as it would standalone, just later.  At
    most one part is ever active (windows are disjoint by
    construction), which makes composition associative: regrouping
    parts into sub-chains changes neither offsets nor values.

    Every part must declare a finite window — an unbounded part would
    leave no well-defined start for its successor.
    """

    def __init__(self, parts: Sequence) -> None:
        parts = [as_source(p) for p in parts]
        if not parts:
            raise ValueError("chain needs at least one part")
        self.parts: list = []
        self.offsets: list[int] = []
        off = 0
        for p in parts:
            w = p.window()
            if w is None:
                raise ValueError(
                    "chain parts must declare a finite active window "
                    f"(got window=None from {type(p).__name__})"
                )
            if isinstance(p, ChainedSource):
                # flatten: a chain of chains is the same source as the
                # flat chain (offsets are cumulative either way)
                for q, qoff in zip(p.parts, p.offsets):
                    self.parts.append(q)
                    self.offsets.append(off + qoff)
                off += p.window()[1]
            else:
                self.parts.append(p)
                self.offsets.append(off)
                off += int(w[1])
        self._stop = off

    @property
    def n_dofs(self) -> int:
        for p in self.parts:
            n = getattr(p, "n_dofs", None)
            if n is not None:
                return int(n)
        raise AttributeError("no chain part declares n_dofs")

    def __call__(self, it: int) -> np.ndarray:
        return self.evaluate(it, np.empty(self.n_dofs))

    def evaluate(self, it: int, out: np.ndarray) -> np.ndarray:
        for p, off in zip(self.parts, self.offsets):
            start, stop = p.window()
            if off + start <= it < off + stop:
                return p.evaluate(it - off, out)
        out[:] = 0.0
        return out

    def window(self) -> tuple[int, int]:
        start0, _ = self.parts[0].window()
        return (self.offsets[0] + int(start0), self._stop)

    def state_dict(self) -> dict:
        states = [p.state_dict() for p in self.parts]
        return {"parts": states} if any(states) else {}

    def load_state_dict(self, doc: dict) -> None:
        states = doc.get("parts") if doc else None
        if not states:
            return
        if len(states) != len(self.parts):
            raise ValueError(
                f"chain state has {len(states)} parts, chain has "
                f"{len(self.parts)}"
            )
        for p, d in zip(self.parts, states):
            p.load_state_dict(d)
