"""The scenario library: physically distinct workloads beyond the
paper's random-impulse ensemble.

Each scenario stresses a different part of the predictor/solver stack:

* ``layered-basin`` — a lens of very soft lacustrine fill nested in
  the sediment layer.  Basin-edge amplification traps surface waves in
  the fill; the three-material stiffness ladder worsens the operator's
  conditioning, so CG iteration counts probe the preconditioner.
* ``fault-rupture`` — a kinematic shear dislocation on a buried
  vertical fault plane, unzipping from the hypocenter at a finite
  rupture velocity.  The forcing moves through the domain over many
  steps (not one impulsive onset), so the data-driven predictor must
  track a non-stationary source instead of free vibration.
* ``soft-soil`` — an equivalent-linear strong-motion proxy: the
  sediment degraded to strain-softened moduli (vs 90 m/s) with boosted
  hysteretic damping, driven harder and at longer periods.  The
  soft/hard contrast (bedrock vs ~11x the soil's) is the conditioning
  regime where iteration counts blow up if the preconditioner is weak.
* ``aftershocks`` — a mainshock followed by a decaying sequence of
  off-fault aftershocks separated by quiescent gaps.  During a gap the
  response decays toward rest, the adaptive controller grows the
  history length ``s`` — and then a new event arrives, forcing the
  predictor to re-bootstrap mid-run (the resume path PR 2 fixed, now
  exercised continuously).

All randomness flows through the per-case RNG stream handed to
:meth:`~repro.workloads.scenario.Scenario.case_force`, so every
scenario is deterministic under a fixed campaign seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.waves import (
    BandlimitedImpulse,
    random_impulse_pattern,
    ricker,
    ricker_support_steps,
)
from repro.fem.material import Material
from repro.fem.mesh import Tet10Mesh
from repro.workloads.ground import GroundModel
from repro.workloads.scenario import ImpulseScenario, Scenario, register_scenario
from repro.workloads.sources import ChainedSource, QuiescentSource

__all__ = [
    "BASIN_FILL",
    "SOFT_SOIL",
    "LayeredBasinModel",
    "layered_basin_model",
    "soft_soil_model",
    "KinematicRuptureForce",
    "AftershockSequence",
    "LayeredBasinScenario",
    "FaultRuptureScenario",
    "SoftSoilScenario",
    "AftershockScenario",
    "ChainScenario",
    "LongRecordScenario",
]

#: Very soft lacustrine/estuarine basin fill (San Francisco Bay mud,
#: Mexico City clay class): the amplification-prone third layer.
BASIN_FILL = Material(rho=1600.0, vp=500.0, vs=120.0, damping=0.04)

#: Strain-degraded soft soil (equivalent-linear strong-motion moduli):
#: the secant stiffness a 0.1%-strain cycle leaves of the sediment.
SOFT_SOIL = Material(rho=1500.0, vp=300.0, vs=90.0, damping=0.05)

#: Strong-motion drive of the soft-soil scenario relative to the wave
#: family's nominal amplitude (and the period stretch of its source).
_STRONG_MOTION_AMP = 4.0
_STRONG_MOTION_F0 = 0.6


# ---------------------------------------------------------------- models
@dataclass(frozen=True)
class LayeredBasinModel(GroundModel):
    """Three-material ground: ``fill`` above ``fill_interface``, then
    the base model's sediment, then bedrock below its interface."""

    fill: Material = BASIN_FILL
    fill_interface: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None

    def element_materials(
        self, mesh: Tet10Mesh
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rho, vp, vs = super().element_materials(mesh)
        if self.fill_interface is None:
            return rho, vp, vs
        c = mesh.element_centroids()
        in_fill = c[:, 2] >= self.fill_interface(c[:, 0], c[:, 1])
        rho = np.where(in_fill, self.fill.rho, rho)
        vp = np.where(in_fill, self.fill.vp, vp)
        vs = np.where(in_fill, self.fill.vs, vs)
        return rho, vp, vs


def layered_basin_model(
    base: GroundModel,
    fill_depth_frac: float = 0.35,
    radius_frac: float = 0.3,
) -> LayeredBasinModel:
    """Nest a bowl of :data:`BASIN_FILL` into ``base``'s sediment.

    The fill bowl is centered at the surface, ``fill_depth_frac`` of
    the domain height deep at its middle and feathering to nothing at
    ``radius_frac`` of the horizontal extent — outside the bowl the
    base model is untouched.
    """
    lx, ly, lz = base.dims
    R = radius_frac * min(lx, ly)
    depth = fill_depth_frac * lz

    def fill_interface(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r2 = (np.asarray(x) - lx / 2) ** 2 + (np.asarray(y) - ly / 2) ** 2
        bowl = np.clip(1.0 - r2 / R**2, 0.0, None)
        return lz - depth * bowl

    return LayeredBasinModel(
        name=f"{base.name}+fill",
        interface=base.interface,
        soft=base.soft,
        hard=base.hard,
        dims=base.dims,
        fill_interface=fill_interface,
    )


def soft_soil_model(base: GroundModel) -> GroundModel:
    """``base`` with its sediment degraded to :data:`SOFT_SOIL` — the
    equivalent-linear reading of strong nonlinear site response."""
    return dataclasses.replace(
        base, name=f"{base.name}+soft", soft=SOFT_SOIL
    )


# ---------------------------------------------------------------- forces
@dataclass
class KinematicRuptureForce:
    """Shear couple unzipping along a buried fault plane.

    Every selected node carries a tangential (slip-parallel) force
    whose sign flips across the plane — a distributed double couple —
    switched on by a Ricker source-time function delayed by the node's
    rupture distance from the hypocenter over ``v_rupture``.
    """

    dof: np.ndarray  # (k, 3) dof indices of the selected nodes
    vectors: np.ndarray  # (k, 3) signed slip-parallel force vectors
    onsets: np.ndarray  # (k,) per-node rupture arrival times [s]
    f0: float
    dt: float
    n_dofs: int

    def __call__(self, it: int) -> np.ndarray:
        w = ricker(it * self.dt, self.f0, self.onsets)
        f = np.zeros(self.n_dofs)
        np.add.at(f, self.dof.ravel(), (self.vectors * w[:, None]).ravel())
        return f

    # -- SourceStream protocol (repro.workloads.sources) --
    def window(self) -> tuple[int, int]:
        return ricker_support_steps(
            self.f0,
            float(self.onsets.min()),
            self.dt,
            t0_max=float(self.onsets.max()),
        )

    def evaluate(self, it: int, out: np.ndarray) -> np.ndarray:
        out[:] = 0.0
        start, stop = self.window()
        if start <= it < stop:
            w = ricker(it * self.dt, self.f0, self.onsets)
            np.add.at(
                out, self.dof.ravel(), (self.vectors * w[:, None]).ravel()
            )
        return out

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, doc: dict) -> None:
        pass

    @property
    def rupture_end(self) -> float:
        """Time after which every patch has finished radiating."""
        return float(self.onsets.max() + 2.0 / self.f0)

    @classmethod
    def random(
        cls,
        mesh: Tet10Mesh,
        dt: float,
        rng: np.random.Generator,
        amplitude: float,
        f0: float,
        cycles_to_onset: float = 1.0,
        rupture_cycles: float = 2.5,
    ) -> "KinematicRuptureForce":
        """Sample a fault plane, hypocenter and slip distribution.

        The vertical plane passes near the domain center with a random
        strike; the rupture velocity is set so the farthest patch
        breaks ``rupture_cycles`` source periods after the hypocenter
        — the forcing stays non-stationary for that long.
        """
        lo, hi = mesh.bounds()
        dims = hi - lo
        center = lo + dims * np.array(
            [rng.uniform(0.35, 0.65), rng.uniform(0.35, 0.65), 0.0]
        )
        strike = rng.uniform(0.0, np.pi)
        u_hat = np.array([np.cos(strike), np.sin(strike), 0.0])  # slip dir
        n_hat = np.array([-np.sin(strike), np.cos(strike), 0.0])  # plane normal

        # plane half-thickness from the coarsest node spacing, so even
        # a 2x2x1 mesh puts nodes on both sides of the plane
        spacing = []
        for ax in range(3):
            u = np.unique(np.round(mesh.nodes[:, ax], 9))
            if u.size > 1:
                spacing.append(np.diff(u).min())
        tol = 1.01 * max(spacing)

        rel = mesh.nodes - center
        dist_n = rel @ n_hat
        on_plane = np.abs(dist_n) <= tol
        idx = np.flatnonzero(on_plane)

        # hypocenter: mid-depth on the plane
        hypo_z = lo[2] + 0.4 * dims[2]
        d_along = rel[idx] @ u_hat
        d_rupture = np.sqrt(d_along**2 + (mesh.nodes[idx, 2] - hypo_z) ** 2)
        t0 = cycles_to_onset / f0
        d_max = float(d_rupture.max())
        v_r = d_max / (rupture_cycles / f0) if d_max > 0 else 1.0
        onsets = t0 + d_rupture / v_r

        side = np.where(dist_n[idx] >= 0.0, 1.0, -1.0)
        amps = np.abs(rng.standard_normal(idx.size)) * amplitude
        vectors = (side * amps)[:, None] * u_hat[None, :]
        dof = 3 * idx[:, None] + np.arange(3)[None, :]
        return cls(
            dof=dof,
            vectors=vectors,
            onsets=onsets,
            f0=float(f0),
            dt=float(dt),
            n_dofs=mesh.n_dofs,
        )


@dataclass
class AftershockSequence:
    """Mainshock plus decaying aftershocks with quiescent gaps.

    ``f(it)`` superposes one Ricker-windowed random impulse pattern
    per event; between events the source is silent for multiple
    source periods, so the response rings down and the adaptive
    predictor's history grows stale before the next event hits.
    """

    patterns: np.ndarray  # (n_dofs, n_events) per-event spatial patterns
    onsets: np.ndarray  # (n_events,) event times [s]
    rel_amps: np.ndarray  # (n_events,) Omori-flavored amplitude decay
    f0: float
    dt: float

    def __call__(self, it: int) -> np.ndarray:
        w = self.rel_amps * ricker(it * self.dt, self.f0, self.onsets)
        return self.patterns @ w

    # -- SourceStream protocol (repro.workloads.sources) --
    @property
    def n_dofs(self) -> int:
        return self.patterns.shape[0]

    def window(self) -> tuple[int, int]:
        return ricker_support_steps(
            self.f0,
            float(self.onsets.min()),
            self.dt,
            t0_max=float(self.onsets.max()),
        )

    def evaluate(self, it: int, out: np.ndarray) -> np.ndarray:
        start, stop = self.window()
        if start <= it < stop:
            # full superposition over events: inside the union window
            # this must stay bit-identical to __call__, and a trimmed
            # gemv over only-active columns is not (BLAS accumulation
            # order changes).  Events far from ``it`` contribute exact
            # zeros via the same underflow that bounds the window.
            w = self.rel_amps * ricker(it * self.dt, self.f0, self.onsets)
            np.matmul(self.patterns, w, out=out)
        else:
            out[:] = 0.0
        return out

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, doc: dict) -> None:
        pass

    def quiet_windows(self) -> list[tuple[float, float]]:
        """Inter-event time windows where every source is negligible
        (Ricker support taken as +-1.5 periods around each onset)."""
        half = 1.5 / self.f0
        out = []
        for a, b in zip(self.onsets[:-1], self.onsets[1:]):
            if a + half < b - half:
                out.append((float(a + half), float(b - half)))
        return out

    @classmethod
    def random(
        cls,
        mesh: Tet10Mesh,
        dt: float,
        rng: np.random.Generator,
        amplitude: float,
        f0: float,
        cycles_to_onset: float = 1.0,
        n_aftershocks: int = 2,
        quiescence_cycles: float = 3.0,
    ) -> "AftershockSequence":
        """One mainshock and ``n_aftershocks`` smaller events, each a
        fresh random surface pattern (aftershocks relocate), onsets
        separated by at least ``quiescence_cycles`` source periods."""
        n_events = 1 + int(n_aftershocks)
        patterns = np.column_stack(
            [
                random_impulse_pattern(mesh, rng=rng, amplitude=amplitude)
                for _ in range(n_events)
            ]
        )
        onsets = np.empty(n_events)
        onsets[0] = cycles_to_onset / f0
        for k in range(1, n_events):
            gap = (quiescence_cycles + rng.uniform(0.0, 1.0)) / f0
            onsets[k] = onsets[k - 1] + gap
        # Omori-flavored decay with mild per-event scatter
        rel_amps = np.array(
            [
                1.0 if k == 0 else (0.8 + 0.4 * rng.uniform()) / (k + 1)
                for k in range(n_events)
            ]
        )
        return cls(
            patterns=patterns,
            onsets=onsets,
            rel_amps=rel_amps,
            f0=float(f0),
            dt=float(dt),
        )


# -------------------------------------------------------------- scenarios
@register_scenario
class LayeredBasinScenario(ImpulseScenario):
    """Impulse ensemble over a three-material nested-basin structure."""

    name = "layered-basin"
    description = (
        "soft lacustrine fill nested in the sediment: basin-edge "
        "amplification and a three-material stiffness ladder"
    )

    def ground_model(self, model: str) -> GroundModel:
        return layered_basin_model(Scenario.ground_model(self, model))


@register_scenario
class FaultRuptureScenario(Scenario):
    """Kinematic fault-rupture source on the unmodified structure."""

    name = "fault-rupture"
    description = (
        "kinematic shear rupture unzipping a buried fault plane at "
        "finite rupture velocity: a non-stationary, travelling source"
    )

    def case_force(self, problem, wave, rng):
        return KinematicRuptureForce.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"],
            f0=wave["f0_factor"] / (np.pi * problem.dt),
            cycles_to_onset=wave["cycles_to_onset"],
        )


@register_scenario
class SoftSoilScenario(ImpulseScenario):
    """Equivalent-linear strong-motion proxy: degraded moduli, harder
    and longer-period drive."""

    name = "soft-soil"
    description = (
        "strain-degraded soft soil (equivalent-linear strong motion): "
        "extreme soft/hard contrast driven hard at long periods"
    )

    def ground_model(self, model: str) -> GroundModel:
        return soft_soil_model(Scenario.ground_model(self, model))

    def case_force(self, problem, wave, rng):
        strong = dict(
            wave,
            amplitude=wave["amplitude"] * _STRONG_MOTION_AMP,
            f0_factor=wave["f0_factor"] * _STRONG_MOTION_F0,
        )
        return super().case_force(problem, strong, rng)


@register_scenario
class AftershockScenario(Scenario):
    """Multi-event sequence with inter-event quiescence."""

    name = "aftershocks"
    description = (
        "mainshock + decaying aftershocks separated by quiescent gaps: "
        "the predictor must re-bootstrap after every ring-down"
    )

    def case_force(self, problem, wave, rng):
        return AftershockSequence.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"],
            f0=wave["f0_factor"] / (np.pi * problem.dt),
            cycles_to_onset=wave["cycles_to_onset"],
        )


#: Chain-scenario mainshock drive relative to the wave family's nominal
#: amplitude, and its earlier onset (in units of ``cycles_to_onset``).
#: A mainshock is the large event of its sequence; the offsets also keep
#: the chain's numbers distinct from the plain impulse ensemble's.
_MAINSHOCK_AMP = 1.5
_MAINSHOCK_ONSET = 0.5

#: Trailing silence appended to a chain, in source periods — the
#: post-sequence stretch of record where every step is a pure memset.
_CHAIN_QUIESCENCE_CYCLES = 12.0

#: Long-record sequence shape: enough events and wide enough gaps
#: (> 2x the Ricker support of ~8.9 periods) that the record contains
#: genuinely dead inter-event stretches, hours-scale when extended.
#: The delayed onset distinguishes the record's head from the plain
#: impulse ensemble (whose mainshock it would otherwise reproduce
#: draw-for-draw inside a short observation window).
_LONG_RECORD_AFTERSHOCKS = 5
_LONG_RECORD_QUIESCENCE_CYCLES = 18.0
_LONG_RECORD_ONSET = 1.5


@register_scenario
class ChainScenario(Scenario):
    """Mainshock → aftershocks → quiescence as one composed stream."""

    name = "chain"
    description = (
        "scenario chain: a band-limited mainshock, then a relocated "
        "aftershock sequence, then quiescence — composed end to end "
        "on one step clock via ChainedSource"
    )

    def case_force(self, problem, wave, rng):
        f0 = wave["f0_factor"] / (np.pi * problem.dt)
        mainshock = BandlimitedImpulse.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"] * _MAINSHOCK_AMP,
            f0=f0,
            cycles_to_onset=wave["cycles_to_onset"] * _MAINSHOCK_ONSET,
        )
        aftershocks = AftershockSequence.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"],
            f0=f0,
            cycles_to_onset=wave["cycles_to_onset"],
        )
        quiet_steps = int(
            np.ceil(_CHAIN_QUIESCENCE_CYCLES / (f0 * problem.dt))
        )
        return ChainedSource(
            [
                mainshock,
                aftershocks,
                QuiescentSource(problem.mesh.n_dofs, quiet_steps),
            ]
        )


@register_scenario
class LongRecordScenario(Scenario):
    """Hours-scale strong-motion record: many events, dead gaps."""

    name = "long-record"
    description = (
        "long-record endurance sequence: a mainshock and a long tail "
        "of aftershocks separated by gaps wide enough that the source "
        "is exactly silent between events"
    )

    def case_force(self, problem, wave, rng):
        return AftershockSequence.random(
            problem.mesh,
            problem.dt,
            rng=rng,
            amplitude=wave["amplitude"],
            f0=wave["f0_factor"] / (np.pi * problem.dt),
            cycles_to_onset=wave["cycles_to_onset"] * _LONG_RECORD_ONSET,
            n_aftershocks=_LONG_RECORD_AFTERSHOCKS,
            quiescence_cycles=_LONG_RECORD_QUIESCENCE_CYCLES,
        )
