"""End-to-end campaign example: 3 ground models x 2 input waves x
2 methods, executed through the cached, parallel campaign engine.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_sweep.py

The first execution computes all 12 cells (over 2 worker processes);
running the script again is pure cache hits — every cell is keyed by a
content hash of its parameters in ``campaign-results/example/``.

Equivalent CLI::

    python -m repro campaign \
        --models stratified,basin,slanted --waves 2 \
        --methods crs-cg@gpu,ebe-mcg@cpu-gpu \
        --resolutions 3,3,2 --cases 2 --steps 8 --jobs 2 \
        --store campaign-results/example
"""

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    default_waves,
)


def main() -> None:
    spec = CampaignSpec(
        name="example",
        models=("stratified", "basin", "slanted"),
        waves=default_waves(2),
        methods=("crs-cg@gpu", "ebe-mcg@cpu-gpu"),
        resolutions=((3, 3, 2),),
        cases=2,
        steps=8,
        seed=0,
    )
    store = ResultStore("campaign-results/example")
    report = CampaignRunner(store=store, jobs=2).run(spec)

    print(f"campaign {spec.name!r}: {spec.n_cells} cells")
    print(report.render())

    # the aggregates are also available as plain dictionaries:
    fastest = min(
        report.by_method().items(),
        key=lambda kv: kv[1]["elapsed_per_step_per_case_s"],
    )
    print(f"\nfastest method over all scenarios: {fastest[0]} "
          f"({fastest[1]['elapsed_per_step_per_case_s']:.3e} s/step/case)")


if __name__ == "__main__":
    main()
