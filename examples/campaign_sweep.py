"""End-to-end campaign example: 3 ground models x 2 input waves x
2 methods, executed through the cached, parallel campaign engine —
plus a distributed weak-scaling sweep over the part-local solver and
a cross-scenario difficulty sweep over the workload registry.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_sweep.py

The first execution computes all 12 grid cells (over 2 worker
processes) and the 3 scaling cells; running the script again is pure
cache hits — every cell is keyed by a content hash of its parameters
in ``campaign-results/example/``.

Equivalent CLI (the grid)::

    python -m repro campaign \
        --models stratified,basin,slanted --waves 2 \
        --methods crs-cg@gpu,ebe-mcg@cpu-gpu \
        --resolutions 3,3,2 --cases 2 --steps 8 --jobs 2 \
        --store campaign-results/example

and (the distributed nparts axis as an ordinary campaign grid)::

    python -m repro campaign \
        --models stratified --waves 1 --methods ebe-mcg@cpu-gpu \
        --resolutions 3,3,2 --nparts 1,2,4 --module alps \
        --store campaign-results/example-nparts

and (the workload scenario axis)::

    python -m repro campaign \
        --models stratified --waves 1 --methods ebe-mcg@cpu-gpu \
        --resolutions 3,3,2 --steps 18 \
        --scenario impulse,layered-basin,fault-rupture,soft-soil,aftershocks \
        --store campaign-results/example-scenarios
"""

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    default_waves,
)
from repro.studies.scenarios import (
    render_scenario_table,
    run_scenario_campaign,
    scenario_cells,
    scenario_table,
)
from repro.studies.weakscaling import (
    run_scaling_campaign,
    scaling_cells,
    scaling_table,
)


def main() -> None:
    spec = CampaignSpec(
        name="example",
        models=("stratified", "basin", "slanted"),
        waves=default_waves(2),
        methods=("crs-cg@gpu", "ebe-mcg@cpu-gpu"),
        resolutions=((3, 3, 2),),
        cases=2,
        steps=8,
        seed=0,
    )
    store = ResultStore("campaign-results/example")
    report = CampaignRunner(store=store, jobs=2).run(spec)

    print(f"campaign {spec.name!r}: {spec.n_cells} cells")
    print(report.render())

    # the aggregates are also available as plain dictionaries:
    fastest = min(
        report.by_method().items(),
        key=lambda kv: kv[1]["elapsed_per_step_per_case_s"],
    )
    print(f"\nfastest method over all scenarios: {fastest[0]} "
          f"({fastest[1]['elapsed_per_step_per_case_s']:.3e} s/step/case)")

    # -- distributed mode: a weak-scaling sweep over nparts -----------
    # Each part count is one cached campaign cell; the solver runs
    # part-locally (halo exchange every CG iteration) and the timeline
    # charges the bottleneck part's compute plus nic-lane comm.
    cells = scaling_cells(
        parts=(1, 2, 4), mode="weak", base_resolution=(2, 2, 1),
        steps=6, module="alps",
    )
    outcomes = run_scaling_campaign(
        cells, store=ResultStore("campaign-results/example-scaling")
    )
    print("\nweak scaling over the distributed part-local solver:")
    for pt in scaling_table(outcomes):
        print(f"  nparts={pt.nparts:<3d} dofs={pt.n_dofs:<7d} "
              f"t/step {pt.elapsed_per_step:.3e} s  "
              f"halo {pt.halo_per_step:.3e} s  "
              f"efficiency {pt.efficiency:5.3f}")

    # -- workload axis: how hard is each registered scenario? ---------
    # One cached cell per scenario (same model/wave/method/seed, so
    # the scenario is the only thing varying); the fast wave family
    # (f0_factor=1) compresses the source timeline so 18 steps put the
    # second aftershock — and its predictor re-bootstrap — in-window.
    from repro.campaign import WaveSpec

    sc_outcomes = run_scenario_campaign(
        scenario_cells(wave=WaveSpec(name="w0", f0_factor=1.0),
                       resolution=(3, 3, 2), steps=18, s_range=(2, 8)),
        store=ResultStore("campaign-results/example-scenarios"),
    )
    print()
    print(render_scenario_table(scenario_table(sc_outcomes)))


if __name__ == "__main__":
    main()
