"""Ground-structure screening via ensemble FDD (the paper's Fig. 1
workflow).

For each candidate 3D ground structure, run an ensemble of
random-impulse free-vibration simulations, extract each surface
point's dominant frequency by frequency domain decomposition, and
print the resulting distributions.  Comparing these against observed
microtremor spectra is how the paper proposes to score candidate
models for a real site.

Run:  python examples/ground_ensemble_fdd.py        (a few minutes)
"""

from __future__ import annotations

import numpy as np

from repro import GROUND_MODELS, build_ground_problem, run_method
from repro.analysis import BandlimitedImpulse, dominant_frequencies, fdd_first_singular
from repro.workloads.ground import SEDIMENT

RESOLUTION = (5, 5, 4)
N_CASES = 4
NT = 256

print(f"{'model':12s} {'median f_dom':>12s} {'p10':>8s} {'p90':>8s}   notes")
print("-" * 64)

for name, factory in GROUND_MODELS.items():
    model = factory()
    problem = build_ground_problem(model, resolution=RESOLUTION)
    dt = problem.dt

    # band-limited random impulses around the expected layer resonance
    f_layer = SEDIMENT.vs / (4 * 60.0)
    forces = [
        BandlimitedImpulse.random(problem.mesh, dt, rng=i, amplitude=1e6,
                                  f0=2.0 * f_layer, cycles_to_onset=1.0)
        for i in range(N_CASES)
    ]

    # record vertical displacement at every surface node
    surf = problem.mesh.surface_nodes()
    z_dofs = 3 * surf + 2
    result = run_method(problem, forces, nt=NT, method="ebe-mcg@cpu-gpu",
                        s_range=(4, 12), waveform_dofs=z_dofs)

    # FDD on the free-vibration tail
    tail = result.waveforms[:, NT // 4:, :].transpose(0, 2, 1)
    fs = 1.0 / dt
    doms = dominant_frequencies(tail, fs, nperseg=128, band=(0.2, 0.45 * fs))
    freqs, sv1 = fdd_first_singular(tail, fs, nperseg=128)
    peak = freqs[np.argmax(sv1[1:]) + 1]

    p10, p90 = np.percentile(doms, [10, 90])
    print(f"{name:12s} {np.median(doms):10.3f} Hz {p10:8.3f} {p90:8.3f}"
          f"   FDD sv1 peak at {peak:.3f} Hz")

print(f"\n1D theory for the stratified model: vs/4H = "
      f"{SEDIMENT.vs / (4 * 60.0):.3f} Hz")
print("Distinct distributions across models are what lets the ensemble "
      "discriminate candidate ground structures (paper Fig. 1).")
