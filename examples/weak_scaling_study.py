"""Weak-scaling study: from one measured tile to a 1,920-node Alps run.

Reproduces the paper's Fig. 5 workflow: run the heterogeneous pipeline
on one per-node tile, verify the partitioned operator against the
global one, then extend with the communication model to thousands of
nodes — at both the bench tile size and the paper's 46.5M-dof tiles.

Run:  python examples/weak_scaling_study.py         (~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro import build_ground_problem, run_method, stratified_model
from repro.analysis import BandlimitedImpulse
from repro.cluster import DistributedEBE, PartitionInfo, partition_elements
from repro.cluster.weakscaling import weak_scaling_curve
from repro.hardware.specs import ALPS_MODULE

problem = build_ground_problem(stratified_model(), resolution=(5, 5, 3))
dt = problem.dt

# --- sanity: the partitioned solver is exact -------------------------
info = PartitionInfo(problem.mesh, partition_elements(problem.mesh, 4))
dist = DistributedEBE.from_elements(problem.Ae, info)
x = np.random.default_rng(0).standard_normal(problem.n_dofs)
err = np.abs(dist @ x - problem.ebe_operator() @ x).max()
print(f"partitioned vs global EBE matvec: max diff {err:.2e}")
print(f"partition balance {info.balance():.3f}, "
      f"shared-node fraction {info.surface_fraction():.3f}")

# --- measure one tile -------------------------------------------------
forces = [
    BandlimitedImpulse.random(problem.mesh, dt, rng=i, amplitude=1e6,
                              f0=0.3 / (np.pi * dt), cycles_to_onset=1.0)
    for i in range(8)
]
tile = run_method(problem, forces, nt=40, method="ebe-mcg@cpu-gpu",
                  module=ALPS_MODULE, s_range=(4, 11))
window = (24, 40)
print(f"\ntile: {problem.n_dofs} dofs, "
      f"{tile.elapsed_per_step_per_case(window)*1e6:.2f} us/step/case, "
      f"{tile.iterations_per_step(window):.1f} iters/step")

# --- extend to many nodes ---------------------------------------------
face_nodes = int((np.abs(problem.mesh.nodes[:, 0]) < 1e-9).sum())
nodes = [1, 4, 16, 64, 256, 1024, 1920]
pts = weak_scaling_curve(tile, nodes, face_nodes, window=window)

print(f"\n{'nodes':>6s} {'elapsed/step':>14s} {'efficiency':>10s}")
for p in pts:
    print(f"{p.n_nodes:6d} {p.elapsed_per_step*1e6:12.2f} us "
          f"{100*p.efficiency:9.1f} %")
print("\nAt the bench tile size, latency dominates (microsecond compute);")
print("at the paper's 46.5M dofs/node the same model gives ~94 % at 1,920")
print("nodes — run `pytest benchmarks/test_fig5_weak_scaling.py` for both.")
