"""Quickstart: solve an ensemble of ground-response simulations with
the heterogeneous CPU-GPU pipeline and print the paper-style summary.

Run:  python examples/quickstart.py
Takes about a minute on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro import build_ground_problem, run_method, stratified_model
from repro.analysis import BandlimitedImpulse

# 1. Build a workload: the paper's horizontally-stratified ground
#    model (Fig. 1a) at laptop resolution.
problem = build_ground_problem(stratified_model(), resolution=(5, 5, 3))
print(f"problem: {problem.n_dofs} dofs, {problem.n_elems} TET10 elements, "
      f"dt = {problem.dt:.4f} s")

# 2. Eight random-impulse cases (paper: 32 random inputs); each case
#    gets its own reproducible random surface forcing, band-limited so
#    the source is quiet by ~step 32 and the measurement window sits
#    in free vibration (like the paper's steps 250-500 of 16,384).
forces = [
    BandlimitedImpulse.random(problem.mesh, problem.dt, rng=i, amplitude=1e6,
                              f0=0.3 / (np.pi * problem.dt),
                              cycles_to_onset=1.0)
    for i in range(8)
]

# 3. Run the paper's proposed method: two process sets of four fused
#    cases, data-driven predictor on the (modeled) Grace CPU, EBE
#    multi-RHS conjugate gradients on the (modeled) H100.
result = run_method(problem, forces, nt=64, method="ebe-mcg@cpu-gpu",
                    s_range=(8, 32))

# 4. Report, using the same steady-state window style as the paper.
window = (40, 64)
summary = result.summary(window)
print("\nEBE-MCG@CPU-GPU summary (steady-state window):")
for key, val in summary.items():
    print(f"  {key:34s} {val}")

# 5. Compare against the conventional GPU-only baseline.
baseline = run_method(problem, forces[:1], nt=64, method="crs-cg@gpu")
speedup = (baseline.elapsed_per_step_per_case(window)
           / result.elapsed_per_step_per_case(window))
it_drop = (baseline.iterations_per_step(window)
           / result.iterations_per_step(window))
print(f"\nmodeled speedup vs CRS-CG@GPU : {speedup:.1f}x (paper: 8.67x)")
print(f"CG iteration reduction        : {it_drop:.2f}x (paper: 2.21x)")

# 6. The accuracy guarantee: the refined solutions satisfy the solver
#    tolerance, independent of predictor quality.
final = result.records[-1]
print(f"\nfinal-step iterations per case: {final.iterations}")
assert np.isfinite(result.final_states[0].u).all()
print("done.")
