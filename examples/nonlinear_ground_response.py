"""Nonlinear (equivalent-linear) ground response — the paper's
matrix-free advantage in action.

Strong shaking degrades soft-soil stiffness; the equivalent-linear
driver re-evaluates element strains every few steps and rebuilds the
secant operator.  With the matrix-free EBE formulation this costs
nothing on the (modeled) GPU — with CRS every update would re-stream
the whole matrix.

Run:  python examples/nonlinear_ground_response.py   (~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro import build_ground_problem, stratified_model
from repro.analysis import BandlimitedImpulse
from repro.core.nonlinear import NonlinearDriver
from repro.fem.nonlinear import EquivalentLinearMaterial
from repro.hardware.roofline import DeviceModel
from repro.hardware.specs import SINGLE_GH200

problem = build_ground_problem(stratified_model(), resolution=(5, 5, 3))
force = BandlimitedImpulse.random(
    problem.mesh, problem.dt, rng=0, amplitude=5e7,
    f0=0.3 / (np.pi * problem.dt), cycles_to_onset=0.8,
)

gpu = DeviceModel(SINGLE_GH200.gpu)
print(f"{'operator':8s} {'update':>7s} {'GPU t/step':>11s} {'iters':>6s} "
      f"{'min G/G0':>9s} {'max strain':>11s}")
print("-" * 60)
for op_kind in ("ebe", "crs"):
    for interval in (8, 2):
        drv = NonlinearDriver(
            problem,
            material=EquivalentLinearMaterial(gamma_ref=1e-6),
            update_interval=interval,
            op_kind=op_kind,
        )
        _, tally = drv.run(force, nt=24)
        t = gpu.time_for_tally(tally) / 24
        iters = np.mean([r.iterations for r in drv.records])
        print(f"{op_kind:8s} {interval:7d} {t*1e6:9.2f} us {iters:6.1f} "
              f"{drv.modulus_ratio.min():9.3f} "
              f"{drv.effective_strain.max():11.3e}")

print("\nEBE's per-step cost is flat in update frequency; CRS pays a")
print("re-assembly stream per update (tag 'assembly.crs') — the reason")
print("the paper calls matrix-free 'another advantage ... over the")
print("CRS-based method' for nonlinear problems.")
