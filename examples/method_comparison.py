"""Method comparison: regenerate a Table-3-style report on your machine.

Runs the paper's four methods on the same ensemble and prints the
modeled single-GH200 comparison — elapsed time, iterations, memory,
power, energy — plus the speedup ladder.

Run:  python examples/method_comparison.py          (~2 minutes)
"""

from __future__ import annotations

import numpy as np

from repro import METHODS, build_ground_problem, run_method, stratified_model
from repro.analysis import BandlimitedImpulse

NT = 64
WINDOW = (40, 64)

problem = build_ground_problem(stratified_model(), resolution=(6, 6, 3))
dt = problem.dt
f0 = 0.3 / (np.pi * dt)
forces = [
    BandlimitedImpulse.random(problem.mesh, dt, rng=i, amplitude=1e6,
                              f0=f0, cycles_to_onset=1.0)
    for i in range(8)
]

runs = {}
runs["crs-cg@cpu"] = run_method(problem, forces[:1], nt=NT, method="crs-cg@cpu")
runs["crs-cg@gpu"] = run_method(problem, forces[:1], nt=NT, method="crs-cg@gpu")
runs["crs-cg@cpu-gpu"] = run_method(problem, forces[:2], nt=NT,
                                    method="crs-cg@cpu-gpu", s_range=(8, 32))
runs["ebe-mcg@cpu-gpu"] = run_method(problem, forces, nt=NT,
                                     method="ebe-mcg@cpu-gpu", s_range=(8, 32))

base = runs["crs-cg@cpu"].elapsed_per_step_per_case(WINDOW)
print(f"{'method':18s} {'t/step/case':>12s} {'iters':>7s} {'speedup':>8s} "
      f"{'module W':>9s} {'J/step/case':>12s} {'GPU mem':>9s} {'CPU mem':>9s}")
print("-" * 92)
for m in METHODS:
    r = runs[m]
    s = r.summary(WINDOW)
    print(f"{m:18s} {s['elapsed_per_step_per_case_s']*1e3:10.4f} ms "
          f"{s['iterations_per_step']:7.1f} "
          f"{base / s['elapsed_per_step_per_case_s']:8.1f} "
          f"{s['module_power_W']:8.0f} W "
          f"{s['energy_per_step_per_case_J']*1e3:9.3f} mJ "
          f"{s['gpu_memory_GB']*1e3:6.2f} MB "
          f"{s['cpu_memory_GB']*1e3:6.2f} MB")

print("\npaper (46.5M dofs): speedups 1.00 / 9.96 / 26.1 / 86.4; "
      "energy 9944 / 2163 / 1001 / 309 J")
print("The ordering and the role of each resource reproduce; absolute "
      "ratios grow with problem size (see EXPERIMENTS.md).")
