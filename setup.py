"""Legacy setup shim.

The runtime environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-use-pep517 --no-build-isolation``
goes through this file instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
