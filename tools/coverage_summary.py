"""Render a per-package markdown coverage table from a coverage.json.

Usage (the CI tier-1 job pipes this into the GitHub step summary)::

    python tools/coverage_summary.py coverage.json >> "$GITHUB_STEP_SUMMARY"

Consumes the ``coverage json`` report format (pytest-cov's
``--cov-report=json``): per-file ``summary.covered_lines`` /
``summary.num_statements``, aggregated here by top-level package under
``repro/``.
"""

from __future__ import annotations

import json
import pathlib
import sys

__all__ = ["package_rows", "render_markdown", "main"]


def package_rows(doc: dict) -> list[tuple[str, int, int, float]]:
    """``(package, covered, statements, percent)`` per package, sorted,
    with a TOTAL row last."""
    per_pkg: dict[str, list[int]] = {}
    for filename, data in doc.get("files", {}).items():
        parts = pathlib.PurePosixPath(filename.replace("\\", "/")).parts
        if "repro" in parts:
            idx = parts.index("repro")
            tail = parts[idx + 1:]
            pkg = "repro/" + (tail[0] if len(tail) > 1 else "(root)")
        else:
            pkg = parts[0] if parts else "(unknown)"
        s = data.get("summary", {})
        acc = per_pkg.setdefault(pkg, [0, 0])
        acc[0] += int(s.get("covered_lines", 0))
        acc[1] += int(s.get("num_statements", 0))
    rows = [
        (pkg, c, n, 100.0 * c / n if n else 100.0)
        for pkg, (c, n) in sorted(per_pkg.items())
    ]
    total_c = sum(r[1] for r in rows)
    total_n = sum(r[2] for r in rows)
    rows.append(
        ("TOTAL", total_c, total_n, 100.0 * total_c / total_n if total_n else 100.0)
    )
    return rows


def render_markdown(doc: dict) -> str:
    lines = [
        "## Coverage by package",
        "",
        "| package | covered | statements | % |",
        "|---|---:|---:|---:|",
    ]
    for pkg, covered, statements, pct in package_rows(doc):
        name = f"**{pkg}**" if pkg == "TOTAL" else f"`{pkg}`"
        lines.append(f"| {name} | {covered} | {statements} | {pct:.1f} |")
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: coverage_summary.py <coverage.json>", file=sys.stderr)
        return 2
    doc = json.loads(pathlib.Path(argv[0]).read_text())
    print(render_markdown(doc))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
